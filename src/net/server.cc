#include "net/server.h"

#include <sys/socket.h>

#include <cerrno>
#include <utility>

#include "net/socket_io.h"
#include "net/wire.h"

namespace wnrs {
namespace net {

namespace {

/// Best-effort request id of an undecodable request payload: the id is
/// the first field, so it usually survives whatever corrupted the rest.
uint64_t SalvageRequestId(std::string_view payload) {
  WireReader r(payload);
  uint64_t id = 0;
  if (!r.U64(&id)) return 0;
  return id;
}

serve::WhyNotResponse MalformedResponse(std::string message) {
  serve::WhyNotResponse response;
  response.status = Status::InvalidArgument(std::move(message));
  return response;
}

}  // namespace

Result<std::unique_ptr<WnrsServer>> WnrsServer::Start(
    const WhyNotEngine* engine, ServerOptions options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("WnrsServer needs an engine");
  }
  return Start(std::make_shared<const serve::EngineBackend>(engine),
               std::move(options));
}

Result<std::unique_ptr<WnrsServer>> WnrsServer::Start(
    std::shared_ptr<const serve::QueryBackend> backend,
    ServerOptions options) {
  if (backend == nullptr) {
    return Status::InvalidArgument("WnrsServer needs a backend");
  }
  auto listen_fd =
      TcpListen(options.host, options.port, options.listen_backlog);
  if (!listen_fd.ok()) return listen_fd.status();
  auto port = LocalPort(listen_fd.value());
  if (!port.ok()) {
    CloseFd(listen_fd.value());
    return port.status();
  }
  return std::make_unique<WnrsServer>(PrivateTag{}, std::move(backend),
                                      std::move(options), listen_fd.value(),
                                      port.value());
}

WnrsServer::WnrsServer(PrivateTag,
                       std::shared_ptr<const serve::QueryBackend> backend,
                       ServerOptions options, int listen_fd, uint16_t port)
    : options_(std::move(options)),
      listen_fd_(listen_fd),
      port_(port),
      scheduler_(std::make_unique<serve::RequestScheduler>(
          std::move(backend), options_.scheduler)) {
  acceptor_ = std::thread([this] { AcceptLoop(); });
}

WnrsServer::~WnrsServer() { Stop(); }

ServerStats WnrsServer::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void WnrsServer::Stop() {
  // Serialize whole Stops: before this lock a racing second caller
  // returned early on the `stopped_` check and could destroy the server
  // while the first was still joining threads. Now a later caller blocks
  // until teardown is complete, so "Stop returned" always means "all
  // server threads are gone".
  MutexLock stop_lock(stop_mu_);
  {
    MutexLock lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Unblock accept(); the acceptor exits on the resulting error.
  ShutdownFd(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  // Shut the scheduler down first so every in-flight future is fulfilled
  // (Unavailable for still-queued requests). Then half-close each
  // connection: SHUT_RD ends the reader with a clean EOF while the write
  // side stays open, so the writer still flushes every pending response —
  // an admitted request always gets its answer, even across Stop.
  scheduler_->Shutdown();
  // Claim the connection list under mu_ (splice keeps every element at
  // its address — reader/writer threads hold Connection pointers), then
  // join outside the lock so flushing writers can still take mu_ for
  // their stats updates.
  std::list<Connection> conns;
  {
    MutexLock lock(mu_);
    conns.splice(conns.begin(), connections_);
  }
  for (Connection& conn : conns) ShutdownRead(conn.fd);
  for (Connection& conn : conns) {
    if (conn.reader.joinable()) conn.reader.join();
    if (conn.writer.joinable()) conn.writer.join();
    CloseFd(conn.fd);
  }
  CloseFd(listen_fd_);
}

void WnrsServer::AcceptLoop() {
  while (true) {
    int fd;
    do {
      fd = ::accept(listen_fd_, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) return;  // Stop() shut the listener down (or fatal error).
    MutexLock lock(mu_);
    if (stopped_) {
      CloseFd(fd);
      return;
    }
    ++stats_.connections_accepted;
    connections_.emplace_back();
    Connection* conn = &connections_.back();
    conn->fd = fd;
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
    conn->writer = std::thread([this, conn] { WriterLoop(conn); });
  }
}

void WnrsServer::ReaderLoop(Connection* conn) {
  while (true) {
    auto frame = ReadFrame(conn->fd);
    uint64_t salvaged_id = 0;
    std::optional<RequestFrame> request;
    Status error = Status::Ok();
    if (frame.ok() && !frame.value().has_value()) break;  // clean EOF
    if (!frame.ok()) {
      error = frame.status();
    } else if (frame.value()->first.type != FrameType::kRequest) {
      error = Status::InvalidArgument("expected a request frame");
    } else {
      const std::string& payload = frame.value()->second;
      auto decoded = DecodeRequestPayload(payload);
      if (decoded.ok()) {
        request = std::move(decoded).value();
      } else {
        error = decoded.status();
        salvaged_id = SalvageRequestId(payload);
      }
    }
    {
      MutexLock lock(mu_);
      ++stats_.frames_received;
      if (!error.ok()) ++stats_.decode_errors;
    }
    MutexLock lock(conn->mu);
    if (request.has_value()) {
      const uint64_t id = request->request_id;
      conn->inflight.emplace_back(
          id, scheduler_->Submit(std::move(request->request)));
      conn->cv.NotifyOne();
      continue;
    }
    // Framing is broken: answer (when anything is known to answer to) and
    // stop reading this connection.
    std::promise<serve::WhyNotResponse> failed;
    failed.set_value(MalformedResponse(error.message()));
    conn->inflight.emplace_back(salvaged_id, failed.get_future());
    conn->cv.NotifyOne();
    break;
  }
  {
    MutexLock lock(conn->mu);
    conn->reader_done = true;
  }
  conn->cv.NotifyOne();
}

void WnrsServer::WriterLoop(Connection* conn) {
  while (true) {
    std::pair<uint64_t, std::future<serve::WhyNotResponse>> next;
    {
      MutexLock lock(conn->mu);
      while (conn->inflight.empty() && !conn->reader_done) {
        conn->cv.Wait(conn->mu);
      }
      if (conn->inflight.empty()) break;  // reader done and all flushed
      next = std::move(conn->inflight.front());
      conn->inflight.pop_front();
    }
    // Always fulfilled: the scheduler guarantees every future resolves
    // (Shutdown included), so this wait cannot hang Stop().
    const serve::WhyNotResponse response = next.second.get();
    if (!SendAll(conn->fd, EncodeResponseFrame(next.first, response)).ok()) {
      break;  // peer gone; reader will see the shutdown too
    }
    MutexLock lock(mu_);
    ++stats_.responses_sent;
  }
  // The writer is the last user of the socket: once every pending
  // response is flushed (the reader having stopped on EOF or a framing
  // error), close both directions so the peer sees EOF.
  ShutdownFd(conn->fd);
}

}  // namespace net
}  // namespace wnrs
