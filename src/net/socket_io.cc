#include "net/socket_io.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

#include "net/wire.h"

namespace wnrs {
namespace net {

namespace {

Status Errno(const char* what) {
  // system_category().message() instead of strerror(): reader/writer
  // threads report errors concurrently and strerror's static buffer is
  // not thread-safe (clang-tidy concurrency-mt-unsafe).
  return Status::IoError(std::string(what) + ": " +
                         std::system_category().message(errno));
}

Result<sockaddr_in> MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = HostToNetU16(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

Result<int> TcpListen(const std::string& host, uint16_t port, int backlog) {
  auto addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const auto& sa = addr.value();
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    Status s = Errno("bind");
    CloseFd(fd);
    return s;
  }
  if (::listen(fd, backlog) != 0) {
    Status s = Errno("listen");
    CloseFd(fd);
    return s;
  }
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return NetToHostU16(addr.sin_port);
}

Result<int> TcpConnect(const std::string& host, uint16_t port) {
  auto addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  // Frames are small and latency-measured; don't let Nagle batch them.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const auto& sa = addr.value();
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    Status s = Errno("connect");
    CloseFd(fd);
    return s;
  }
  return fd;
}

Status SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

RecvStatus RecvAll(int fd, void* buf, size_t len) {
  size_t got = 0;
  auto* bytes = static_cast<char*>(buf);
  while (got < len) {
    const ssize_t n = ::recv(fd, bytes + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return RecvStatus::kError;
    }
    if (n == 0) return got == 0 ? RecvStatus::kEof : RecvStatus::kError;
    got += static_cast<size_t>(n);
  }
  return RecvStatus::kOk;
}

Result<std::optional<std::pair<FrameHeader, std::string>>> ReadFrame(int fd) {
  char header_bytes[kFrameHeaderSize];
  switch (RecvAll(fd, header_bytes, sizeof(header_bytes))) {
    case RecvStatus::kEof:
      return std::optional<std::pair<FrameHeader, std::string>>();
    case RecvStatus::kError:
      return Status::IoError("torn read in frame header");
    case RecvStatus::kOk:
      break;
  }
  auto header = DecodeFrameHeader(header_bytes, sizeof(header_bytes));
  if (!header.ok()) return header.status();
  std::string payload(header.value().payload_len, '\0');
  if (!payload.empty() &&
      RecvAll(fd, payload.data(), payload.size()) != RecvStatus::kOk) {
    return Status::IoError("torn read in frame payload");
  }
  return std::optional<std::pair<FrameHeader, std::string>>(
      std::in_place, header.value(), std::move(payload));
}

void ShutdownFd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void ShutdownRead(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RD);
}

void ShutdownWrite(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_WR);
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace net
}  // namespace wnrs
