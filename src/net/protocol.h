#ifndef WNRS_NET_PROTOCOL_H_
#define WNRS_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "serve/api.h"

namespace wnrs {
namespace net {

/// The wnrs binary wire protocol (version 1): length-prefixed frames over
/// a plain byte stream (TCP). Layout (DESIGN.md §14 has the diagram):
///
///   frame   := header payload
///   header  := magic:u32 version:u8 type:u8 reserved:u16 payload_len:u32
///   payload := request | response            (by header.type)
///
/// All integers little-endian (src/net/wire.h); doubles as IEEE-754 bit
/// patterns, so answers decode bit-identically. `magic` is the bytes
/// "WNRS"; `payload_len` is capped at kMaxFramePayload so a corrupt
/// length cannot trigger an unbounded allocation.
///
/// Versioning rules: the header layout is frozen forever. Within a
/// version, request/response payload layouts are frozen; any layout
/// change bumps kWireVersion, and a server answers a frame with an
/// unknown version by closing the connection (there is no negotiation —
/// clients and servers of one deployment upgrade together). Enum ids
/// (request kinds, status codes, payload tags) are append-only protocol
/// constants defined next to the enums in serve/api.h.
///
/// Requests carry a client-chosen request_id echoed verbatim in the
/// response, so clients may pipeline many requests per connection and
/// match answers by id.

/// "WNRS" in file order (written little-endian, so the first wire byte
/// is 'W').
inline constexpr uint32_t kWireMagic = 0x53524E57u;
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderSize = 12;
/// Upper bound on payload_len: generous for the largest real answers
/// (a truncated-at-8192-rectangles 2-D safe region is ~0.5 MiB) while
/// still rejecting nonsense lengths.
inline constexpr uint32_t kMaxFramePayload = 16u << 20;
/// Caps inside payloads, so corrupt counts fail fast instead of
/// allocating: dimensionality and list lengths far beyond anything the
/// engine produces.
inline constexpr uint16_t kMaxWireDims = 1024;
inline constexpr uint32_t kMaxWireStringLen = 1u << 16;

enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
};

struct FrameHeader {
  FrameType type = FrameType::kRequest;
  uint32_t payload_len = 0;
};

/// A request frame body: the wire-serializable subset of WhyNotRequest
/// (everything except the in-process absolute deadline) plus the
/// client-chosen id echoed in the response.
struct RequestFrame {
  uint64_t request_id = 0;
  serve::WhyNotRequest request;
};

/// A response frame body.
struct ResponseFrame {
  uint64_t request_id = 0;
  serve::WhyNotResponse response;
};

/// Encodes a complete frame (header + payload). The request's absolute
/// `deadline` field is not encoded (steady_clock points are meaningless
/// across processes) — wire clients express deadlines via `timeout`.
std::string EncodeRequestFrame(uint64_t request_id,
                               const serve::WhyNotRequest& request);

/// Encodes a complete response frame. Every payload alternative is
/// encoded exactly (bit-identical doubles); the absolute deadline never
/// appears. shared_batch/queue_wait travel too, so load tools can report
/// server-side queueing.
std::string EncodeResponseFrame(uint64_t request_id,
                                const serve::WhyNotResponse& response);

/// Parses and validates a frame header from the first kFrameHeaderSize
/// bytes of `data`. Fails on short input, bad magic, unknown version or
/// frame type, and payload_len > kMaxFramePayload.
Result<FrameHeader> DecodeFrameHeader(const void* data, size_t len);

/// Decodes a request payload (the bytes after the header). Any
/// truncation, trailing garbage, unknown kind/semantics id, or
/// over-limit count fails with InvalidArgument — never aborts.
Result<RequestFrame> DecodeRequestPayload(std::string_view payload);

/// Decodes a response payload; same failure contract.
Result<ResponseFrame> DecodeResponsePayload(std::string_view payload);

}  // namespace net
}  // namespace wnrs

#endif  // WNRS_NET_PROTOCOL_H_
