#ifndef WNRS_NET_SERVER_H_
#define WNRS_NET_SERVER_H_

#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <thread>

#include "common/annotated_mutex.h"
#include "common/status.h"
#include "core/engine.h"
#include "net/protocol.h"
#include "serve/scheduler.h"

namespace wnrs {
namespace net {

/// Server tuning.
struct ServerOptions {
  /// IPv4 address to bind (loopback by default; serving is trusted-LAN
  /// territory, there is no auth layer).
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port, read back via port().
  uint16_t port = 0;
  int listen_backlog = 64;
  /// Options for the embedded RequestScheduler (admission control depth,
  /// batch cap, start_paused for tests).
  serve::SchedulerOptions scheduler;
};

/// Point-in-time server counters.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t frames_received = 0;
  uint64_t decode_errors = 0;
  uint64_t responses_sent = 0;
};

/// The wnrs network front end: speaks the binary protocol of
/// src/net/protocol.h over plain TCP and delegates every request to a
/// RequestScheduler over one engine — deadlines, priorities, same-q
/// batching, and admission control all come from the scheduler, the
/// server only moves frames.
///
/// Threading: one accept thread; per connection, a reader thread
/// (decode → Submit, enqueue the future) and a writer thread (await
/// futures in submission order, encode, send). Responses on one
/// connection therefore come back in request order, while the scheduler
/// is free to reorder execution by priority across connections; clients
/// may pipeline without limit and match responses by request_id.
///
/// A malformed frame answers with an InvalidArgument response frame when
/// a request id could be salvaged (id 0 otherwise) and then closes the
/// connection — after a framing error the byte stream can no longer be
/// trusted.
class WnrsServer {
 private:
  /// Passkey: lets make_unique reach the constructor while keeping Start
  /// the only way to build a server.
  struct PrivateTag {
    explicit PrivateTag() = default;
  };

 public:
  /// Binds, listens, and starts the accept thread. The engine must
  /// outlive the server. Convenience form of the backend overload below.
  static Result<std::unique_ptr<WnrsServer>> Start(const WhyNotEngine* engine,
                                                   ServerOptions options = {});

  /// Serves any QueryBackend (serve/backend.h): a single engine or the
  /// sharded engine, over the identical wire protocol.
  static Result<std::unique_ptr<WnrsServer>> Start(
      std::shared_ptr<const serve::QueryBackend> backend,
      ServerOptions options = {});

  WnrsServer(PrivateTag, std::shared_ptr<const serve::QueryBackend> backend,
             ServerOptions options, int listen_fd, uint16_t port);

  ~WnrsServer();

  WnrsServer(const WnrsServer&) = delete;
  WnrsServer& operator=(const WnrsServer&) = delete;

  /// The bound TCP port (resolves ephemeral port 0).
  uint16_t port() const { return port_; }

  /// The embedded scheduler — tests use Pause/Resume to stage overload
  /// deterministically; stats() exposes admission/deadline counters.
  serve::RequestScheduler& scheduler() { return *scheduler_; }

  ServerStats stats() const;

  /// Stops accepting, unblocks and joins every connection thread, shuts
  /// the scheduler down (queued requests answer Unavailable, and their
  /// responses are flushed before the sockets close). Idempotent; the
  /// destructor calls it.
  void Stop();

 private:
  struct Connection {
    int fd = -1;
    std::thread reader;
    std::thread writer;
    Mutex mu;
    CondVar cv;
    /// Futures in submission order, drained FIFO by the writer.
    std::deque<std::pair<uint64_t, std::future<serve::WhyNotResponse>>>
        inflight WNRS_GUARDED_BY(mu);
    bool reader_done WNRS_GUARDED_BY(mu) = false;
  };

  void AcceptLoop();
  void ReaderLoop(Connection* conn);
  void WriterLoop(Connection* conn);

  const ServerOptions options_;
  const int listen_fd_;
  const uint16_t port_;
  std::unique_ptr<serve::RequestScheduler> scheduler_;

  mutable Mutex mu_;
  std::list<Connection> connections_ WNRS_GUARDED_BY(mu_);
  bool stopped_ WNRS_GUARDED_BY(mu_) = false;
  ServerStats stats_ WNRS_GUARDED_BY(mu_);

  /// Serializes Stop callers: the first one joins the acceptor and every
  /// connection thread while any later caller blocks here until teardown
  /// finishes — without this a racing second Stop returned early on the
  /// `stopped_` check and could destroy the server under live joins.
  /// Ordered strictly before mu_ (never acquire stop_mu_ with mu_ held).
  Mutex stop_mu_;
  std::thread acceptor_ WNRS_GUARDED_BY(stop_mu_);
};

}  // namespace net
}  // namespace wnrs

#endif  // WNRS_NET_SERVER_H_
