#include "reverse_skyline/bbrs.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <queue>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "geometry/kernels.h"
#include "geometry/transform.h"
#include "reverse_skyline/window_query.h"

namespace wnrs {
namespace {

int SignOf(double v) { return v > 0.0 ? 1 : (v < 0.0 ? -1 : 0); }

/// Capacity hint for confirmed-skyline buffers (see bbs.cc): enough for
/// the common case without committing O(n) memory up front.
size_t SkylineReserveHint(size_t tree_size) {
  return std::min<size_t>(tree_size, 256);
}

/// A confirmed global-skyline point: its transformed coordinates and its
/// quadrant signature relative to q.
struct GlobalPoint {
  Point original;
  Point transformed;
  std::vector<int> signs;
  RStarTree::Id id;
};

/// True iff `g` globally dominates the data point with transformed
/// coordinates `t` and quadrant signature `signs`: g then lies inside the
/// point's window and disqualifies it from the reverse skyline. The
/// strictness requirement is that g differs from q in some dimension
/// (g.t_j > 0): only then is |x - g|_j < |x - q|_j, i.e. g is a strict
/// window witness. A product exactly at q ties everywhere and never
/// disqualifies anyone.
bool GloballyDominatesPoint(const GlobalPoint& g, const Point& t,
                            const std::vector<int>& signs) {
  bool strict = false;
  for (size_t i = 0; i < t.dims(); ++i) {
    // Quadrant compatibility: g_i must lie between q_i and the candidate
    // in dimension i; a g coordinate equal to q_i is on every path.
    if (g.signs[i] != 0 && g.signs[i] != signs[i]) return false;
    if (g.transformed[i] > t[i]) return false;
    if (g.transformed[i] > 0.0) strict = true;
  }
  return strict;
}

/// True iff `g` globally dominates every possible point inside the node
/// rectangle `r` (original space): the rectangle must sit entirely within
/// g's quadrant side and g's transformed coordinates must dominate the
/// rectangle's minimum transformed coordinates.
bool GloballyDominatesRect(const GlobalPoint& g, const Rectangle& r,
                           const Point& q) {
  bool strict = false;
  for (size_t i = 0; i < q.dims(); ++i) {
    const int gs = g.signs[i];
    if (gs > 0) {
      if (r.lo()[i] < q[i]) return false;  // Node spans below q.
    } else if (gs < 0) {
      if (r.hi()[i] > q[i]) return false;  // Node spans above q.
    }
    // Minimum transformed coordinate of the rectangle in dimension i.
    double min_t = 0.0;
    if (q[i] < r.lo()[i]) {
      min_t = r.lo()[i] - q[i];
    } else if (q[i] > r.hi()[i]) {
      min_t = q[i] - r.hi()[i];
    }
    if (g.transformed[i] > min_t) return false;
    if (g.transformed[i] > 0.0) strict = true;
  }
  return strict;
}

std::vector<GlobalPoint> ComputeGlobalSkyline(
    const RStarTree& tree, const Point& q,
    std::optional<RStarTree::Id> exclude_id) {
  struct Item {
    double mindist;
    const RStarTree::Node* node;  // nullptr => data entry
    Point point;                  // original-space point (data entries)
    RStarTree::Id id;
    bool operator>(const Item& other) const {
      return mindist > other.mindist;
    }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  std::vector<GlobalPoint> skyline;
  if (tree.size() == 0) return skyline;
  skyline.reserve(SkylineReserveHint(tree.size()));

  auto signs_of = [&q](const Point& p) {
    std::vector<int> signs(q.dims());
    for (size_t i = 0; i < q.dims(); ++i) signs[i] = SignOf(p[i] - q[i]);
    return signs;
  };

  // Counts accumulate in locals and flush once per traversal, keeping the
  // instrumentation out of the dominance inner loops.
  uint64_t heap_pops = 0;
  uint64_t dominance_tests = 0;
  uint64_t pruned_entries = 0;

  heap.push({0.0, tree.root(), Point(), -1});
  while (!heap.empty()) {
    // top() is const, but the element is discarded by the pop right
    // after — moving it out saves a Point copy per pop.
    Item item = std::move(const_cast<Item&>(heap.top()));
    heap.pop();
    ++heap_pops;
    if (item.node == nullptr) {
      const Point t = ToDistanceSpace(item.point, q);
      const std::vector<int> sg = signs_of(item.point);
      bool dominated = false;
      for (const GlobalPoint& g : skyline) {
        ++dominance_tests;
        if (GloballyDominatesPoint(g, t, sg)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) {
        skyline.push_back({item.point, t, sg, item.id});
      } else {
        ++pruned_entries;
      }
      continue;
    }
    tree.CountNodeRead();
    for (const RStarTree::Entry& e : item.node->entries) {
      if (item.node->is_leaf) {
        if (exclude_id.has_value() && e.id == *exclude_id) continue;
        const Point& p = e.mbr.lo();
        const Point t = ToDistanceSpace(p, q);
        const std::vector<int> sg = signs_of(p);
        bool dominated = false;
        for (const GlobalPoint& g : skyline) {
          ++dominance_tests;
          if (GloballyDominatesPoint(g, t, sg)) {
            dominated = true;
            break;
          }
        }
        if (!dominated) {
          heap.push({t.L1Norm(), nullptr, p, e.id});
        } else {
          ++pruned_entries;
        }
      } else {
        bool dominated = false;
        for (const GlobalPoint& g : skyline) {
          ++dominance_tests;
          if (GloballyDominatesRect(g, e.mbr, q)) {
            dominated = true;
            break;
          }
        }
        if (!dominated) {
          const Rectangle t = RectToDistanceSpace(e.mbr, q);
          heap.push({t.lo().L1Norm(), e.child, Point(), -1});
        } else {
          ++pruned_entries;
        }
      }
    }
  }
  MetricAdd(CounterId::kBbrsHeapPops, heap_pops);
  MetricAdd(CounterId::kBbrsDominanceTests, dominance_tests);
  MetricAdd(CounterId::kBbrsPrunedEntries, pruned_entries);
  return skyline;
}

// ---------------------------------------------------------------------------
// Packed (frozen read path) twins. The confirmed global skyline lives in
// dense SoA slabs (originals, transformed coordinates, quadrant signs,
// ids) instead of a vector of GlobalPoints; dominance tests run over raw
// spans with the exact comparison sequence of the Point-based helpers, so
// every pruning decision — and every work counter — is identical.
// ---------------------------------------------------------------------------

/// SoA global skyline: row i occupies [i*d, (i+1)*d) of each slab.
struct PackedGlobalSkyline {
  size_t d = 0;
  std::vector<double> original;
  std::vector<double> transformed;
  std::vector<int8_t> signs;
  std::vector<PackedRTree::Id> ids;

  size_t size() const { return ids.size(); }
};

/// GloballyDominatesPoint on spans (same expression order).
bool GloballyDominatesPointSpan(const double* gt, const int8_t* gs,
                                const double* t, const int8_t* signs,
                                size_t d) {
  bool strict = false;
  for (size_t i = 0; i < d; ++i) {
    if (gs[i] != 0 && gs[i] != signs[i]) return false;
    if (gt[i] > t[i]) return false;
    if (gt[i] > 0.0) strict = true;
  }
  return strict;
}

/// GloballyDominatesRect on entry `e` of the SoA coordinate planes.
bool GloballyDominatesRectSpan(const double* gt, const int8_t* gs,
                               const SoaPlanes& planes, uint32_t e,
                               const double* q, size_t d) {
  bool strict = false;
  for (size_t i = 0; i < d; ++i) {
    const double rlo = planes.lo(i)[e];
    const double rhi = planes.hi(i)[e];
    if (gs[i] > 0) {
      if (rlo < q[i]) return false;  // Node spans below q.
    } else if (gs[i] < 0) {
      if (rhi > q[i]) return false;  // Node spans above q.
    }
    double min_t = 0.0;
    if (q[i] < rlo) {
      min_t = rlo - q[i];
    } else if (q[i] > rhi) {
      min_t = q[i] - rhi;
    }
    if (gt[i] > min_t) return false;
    if (gt[i] > 0.0) strict = true;
  }
  return strict;
}

PackedGlobalSkyline ComputeGlobalSkyline(
    const PackedRTree& tree, const Point& q,
    std::optional<PackedRTree::Id> exclude_id) {
  const size_t d = tree.dims();
  const double* qs = q.coords().data();
  struct Item {
    double mindist;
    uint32_t node;  // kNoNode => data entry
    size_t coord;   // offset of the original-space point in `pool`
    PackedRTree::Id id;
    bool operator>(const Item& other) const {
      return mindist > other.mindist;
    }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  std::vector<double> pool;  // original-space candidate points, d-strided
  PackedGlobalSkyline skyline;
  skyline.d = d;
  if (tree.size() == 0) return skyline;
  const size_t hint = SkylineReserveHint(tree.size());
  skyline.original.reserve(hint * d);
  skyline.transformed.reserve(hint * d);
  skyline.signs.reserve(hint * d);
  skyline.ids.reserve(hint);
  pool.reserve(hint * d);

  const SoaPlanes planes = tree.planes();
  const size_t cap = KernelPad(tree.max_node_entries());
  std::vector<double> corners(d * cap);  // per-node corner batch (SoA)
  std::vector<double> cdist(cap);        // corner L1 norms
  std::vector<double> tbuf(d);
  std::vector<int8_t> sbuf(d);
  uint64_t heap_pops = 0;
  uint64_t dominance_tests = 0;
  uint64_t pruned_entries = 0;

  // Fills tbuf/sbuf from the point at `p` (coordinate stride `stride`).
  auto transform_and_sign = [&](const double* p, size_t stride) {
    for (size_t i = 0; i < d; ++i) {
      const double v = p[i * stride];
      tbuf[i] = std::fabs(qs[i] - v);
      sbuf[i] = static_cast<int8_t>(SignOf(v - qs[i]));
    }
  };
  // Early-exit scan over the SoA skyline; counts one test per row
  // examined, exactly like the Point-based loop.
  auto point_dominated = [&] {
    for (size_t g = 0; g < skyline.size(); ++g) {
      ++dominance_tests;
      if (GloballyDominatesPointSpan(skyline.transformed.data() + g * d,
                                     skyline.signs.data() + g * d,
                                     tbuf.data(), sbuf.data(), d)) {
        return true;
      }
    }
    return false;
  };

  heap.push({0.0, tree.root(), 0, -1});
  while (!heap.empty()) {
    const Item item = heap.top();
    heap.pop();
    ++heap_pops;
    if (item.node == PackedRTree::kNoNode) {
      const double* p = pool.data() + item.coord;
      transform_and_sign(p, 1);
      if (!point_dominated()) {
        skyline.original.insert(skyline.original.end(), p, p + d);
        skyline.transformed.insert(skyline.transformed.end(), tbuf.begin(),
                                   tbuf.end());
        skyline.signs.insert(skyline.signs.end(), sbuf.begin(), sbuf.end());
        skyline.ids.push_back(item.id);
      } else {
        ++pruned_entries;
      }
      continue;
    }
    tree.CountNodeRead();
    const PackedRTree::Node& n = tree.node(item.node);
    const uint32_t end = n.first_entry + n.entry_count;
    if (n.is_leaf != 0) {
      for (uint32_t e = n.first_entry; e < end; ++e) {
        const PackedRTree::Id id = tree.entry_id(e);
        if (exclude_id.has_value() && id == *exclude_id) continue;
        // Leaf entries are points: their coordinates are column e of the
        // lo planes, one plane stride apart.
        transform_and_sign(planes.data + e, planes.stride);
        if (!point_dominated()) {
          const size_t off = pool.size();
          for (size_t j = 0; j < d; ++j) pool.push_back(planes.lo(j)[e]);
          heap.push({L1NormSpan(tbuf.data(), d), PackedRTree::kNoNode, off,
                     id});
        } else {
          ++pruned_entries;
        }
      }
    } else {
      // Corner distances for the whole node in one batch-kernel pass;
      // the dominance scans below stay scalar because their early-exit
      // depth is the pinned dominance_tests counter.
      MinDistCornerBatchSoa(planes, n.first_entry, n.entry_count, qs,
                            corners.data(), cap, cdist.data());
      for (uint32_t e = n.first_entry; e < end; ++e) {
        bool dominated = false;
        for (size_t g = 0; g < skyline.size(); ++g) {
          ++dominance_tests;
          if (GloballyDominatesRectSpan(skyline.transformed.data() + g * d,
                                        skyline.signs.data() + g * d, planes,
                                        e, qs, d)) {
            dominated = true;
            break;
          }
        }
        if (!dominated) {
          heap.push({cdist[e - n.first_entry], tree.entry_child(e), 0, -1});
        } else {
          ++pruned_entries;
        }
      }
    }
  }
  MetricAdd(CounterId::kBbrsHeapPops, heap_pops);
  MetricAdd(CounterId::kBbrsDominanceTests, dominance_tests);
  MetricAdd(CounterId::kBbrsPrunedEntries, pruned_entries);
  return skyline;
}

/// Materializes row i of an SoA slab as a Point (cold path: verification
/// probes, not traversal loops).
Point RowAsPoint(const std::vector<double>& slab, size_t i, size_t d) {
  Point p(d);
  for (size_t j = 0; j < d; ++j) p[j] = slab[i * d + j];
  return p;
}

}  // namespace

std::vector<RStarTree::Id> GlobalSkylineCandidates(
    const RStarTree& tree, const Point& q,
    std::optional<RStarTree::Id> exclude_id) {
  WNRS_CHECK(q.dims() == tree.dims());
  std::vector<RStarTree::Id> ids;
  for (const GlobalPoint& g : ComputeGlobalSkyline(tree, q, exclude_id)) {
    ids.push_back(g.id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<RStarTree::Id> BbrsReverseSkyline(const RStarTree& tree,
                                              const Point& q,
                                              ThreadPool* pool) {
  WNRS_CHECK(q.dims() == tree.dims());
  const std::vector<GlobalPoint> candidates =
      ComputeGlobalSkyline(tree, q, std::nullopt);
  // The verification probes are independent read-only window queries;
  // each writes its own flag slot, so scheduling cannot change the result.
  std::vector<unsigned char> member(candidates.size(), 0);
  auto verify = [&](size_t i) {
    member[i] =
        WindowEmpty(tree, candidates[i].original, q, candidates[i].id) ? 1 : 0;
  };
  if (pool != nullptr) {
    pool->ParallelFor(0, candidates.size(), verify);
  } else {
    for (size_t i = 0; i < candidates.size(); ++i) verify(i);
  }
  std::vector<RStarTree::Id> out;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (member[i] != 0) out.push_back(candidates[i].id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<RStarTree::Id> BbrsReverseSkylineBichromatic(
    const RStarTree& customers, const RStarTree& products, const Point& q,
    bool shared_relation, ThreadPool* pool) {
  WNRS_CHECK(q.dims() == customers.dims());
  WNRS_CHECK(q.dims() == products.dims());
  const std::vector<GlobalPoint> pruners =
      ComputeGlobalSkyline(products, q, std::nullopt);

  // Phase 1 (serial): traverse the customer tree, collecting every
  // customer that survives the midpoint-rule pruning. Phase 2 verifies
  // the survivors with independent window probes, optionally in parallel.
  struct Survivor {
    Point point;
    RStarTree::Id id;
  };
  std::vector<Survivor> survivors;
  uint64_t dominance_tests = 0;
  uint64_t pruned_entries = 0;
  std::vector<const RStarTree::Node*> stack = {customers.root()};
  while (!stack.empty()) {
    const RStarTree::Node* node = stack.back();
    stack.pop_back();
    customers.CountNodeRead();
    for (const RStarTree::Entry& e : node->entries) {
      if (node->is_leaf) {
        survivors.push_back({e.mbr.lo(), e.id});
      } else {
        // Midpoint rule: skip the subtree when some pruner dynamically
        // dominates q w.r.t. every customer the MBR can contain. (With a
        // shared relation the pruner might be the customer itself, so the
        // rule only applies to pruners strictly dominating; a tuple never
        // strictly self-dominates, keeping the exclusion sound.)
        bool pruned = false;
        for (const GlobalPoint& g : pruners) {
          ++dominance_tests;
          bool weak_all = true;
          bool strict_any = false;
          for (size_t i = 0; i < q.dims() && weak_all; ++i) {
            const double gi = g.original[i];
            if (gi < q[i]) {
              const double mid = 0.5 * (gi + q[i]);
              if (e.mbr.hi()[i] > mid) weak_all = false;
              if (e.mbr.hi()[i] < mid) strict_any = true;
            } else if (gi > q[i]) {
              const double mid = 0.5 * (gi + q[i]);
              if (e.mbr.lo()[i] < mid) weak_all = false;
              if (e.mbr.lo()[i] > mid) strict_any = true;
            }
            // gi == q[i]: tie in this dimension for every customer.
          }
          if (weak_all && strict_any && !shared_relation) {
            pruned = true;
            break;
          }
          if (weak_all && strict_any && shared_relation) {
            // With a shared relation the pruning product may be one of
            // the customers inside this subtree, and a customer's own
            // tuple is excluded from its window query — so only prune
            // when the pruner lies outside the MBR.
            if (!e.mbr.Contains(g.original)) {
              pruned = true;
              break;
            }
          }
        }
        if (!pruned) {
          stack.push_back(e.child);
        } else {
          ++pruned_entries;
        }
      }
    }
  }
  MetricAdd(CounterId::kBbrsDominanceTests, dominance_tests);
  MetricAdd(CounterId::kBbrsPrunedEntries, pruned_entries);

  std::vector<unsigned char> member(survivors.size(), 0);
  auto verify = [&](size_t i) {
    std::optional<RStarTree::Id> exclude;
    if (shared_relation) exclude = survivors[i].id;
    member[i] = WindowEmpty(products, survivors[i].point, q, exclude) ? 1 : 0;
  };
  if (pool != nullptr) {
    pool->ParallelFor(0, survivors.size(), verify);
  } else {
    for (size_t i = 0; i < survivors.size(); ++i) verify(i);
  }
  std::vector<RStarTree::Id> out;
  for (size_t i = 0; i < survivors.size(); ++i) {
    if (member[i] != 0) out.push_back(survivors[i].id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PackedRTree::Id> GlobalSkylineCandidates(
    const PackedRTree& tree, const Point& q,
    std::optional<PackedRTree::Id> exclude_id) {
  WNRS_CHECK(q.dims() == tree.dims());
  PackedGlobalSkyline skyline = ComputeGlobalSkyline(tree, q, exclude_id);
  std::vector<PackedRTree::Id> ids = std::move(skyline.ids);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<PackedRTree::Id> BbrsReverseSkyline(const PackedRTree& tree,
                                                const Point& q,
                                                ThreadPool* pool) {
  WNRS_CHECK(q.dims() == tree.dims());
  const PackedGlobalSkyline candidates =
      ComputeGlobalSkyline(tree, q, std::nullopt);
  const size_t d = tree.dims();
  std::vector<unsigned char> member(candidates.size(), 0);
  auto verify = [&](size_t i) {
    member[i] = WindowEmpty(tree, RowAsPoint(candidates.original, i, d), q,
                            candidates.ids[i])
                    ? 1
                    : 0;
  };
  if (pool != nullptr) {
    pool->ParallelFor(0, candidates.size(), verify);
  } else {
    for (size_t i = 0; i < candidates.size(); ++i) verify(i);
  }
  std::vector<PackedRTree::Id> out;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (member[i] != 0) out.push_back(candidates.ids[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PackedRTree::Id> BbrsReverseSkylineBichromatic(
    const PackedRTree& customers, const PackedRTree& products, const Point& q,
    bool shared_relation, ThreadPool* pool) {
  WNRS_CHECK(q.dims() == customers.dims());
  WNRS_CHECK(q.dims() == products.dims());
  const size_t d = q.dims();
  const double* qs = q.coords().data();
  const PackedGlobalSkyline pruners =
      ComputeGlobalSkyline(products, q, std::nullopt);

  // Phase 1 (serial): midpoint-rule pruning over the packed customer
  // arena; same traversal and decisions as the dynamic-tree pass.
  struct Survivor {
    Point point;
    PackedRTree::Id id;
  };
  std::vector<Survivor> survivors;
  uint64_t dominance_tests = 0;
  uint64_t pruned_entries = 0;
  std::vector<uint32_t> stack = {customers.root()};
  while (!stack.empty()) {
    const uint32_t ni = stack.back();
    stack.pop_back();
    customers.CountNodeRead();
    const PackedRTree::Node& n = customers.node(ni);
    const uint32_t end = n.first_entry + n.entry_count;
    for (uint32_t e = n.first_entry; e < end; ++e) {
      if (n.is_leaf != 0) {
        Point p(d);
        for (size_t j = 0; j < d; ++j) p[j] = customers.entry_lo(e, j);
        survivors.push_back({std::move(p), customers.entry_id(e)});
      } else {
        bool pruned = false;
        for (size_t g = 0; g < pruners.size(); ++g) {
          ++dominance_tests;
          const double* go = pruners.original.data() + g * d;
          bool weak_all = true;
          bool strict_any = false;
          for (size_t i = 0; i < d && weak_all; ++i) {
            const double gi = go[i];
            if (gi < qs[i]) {
              const double mid = 0.5 * (gi + qs[i]);
              if (customers.entry_hi(e, i) > mid) weak_all = false;
              if (customers.entry_hi(e, i) < mid) strict_any = true;
            } else if (gi > qs[i]) {
              const double mid = 0.5 * (gi + qs[i]);
              if (customers.entry_lo(e, i) < mid) weak_all = false;
              if (customers.entry_lo(e, i) > mid) strict_any = true;
            }
            // gi == qs[i]: tie in this dimension for every customer.
          }
          if (weak_all && strict_any && !shared_relation) {
            pruned = true;
            break;
          }
          if (weak_all && strict_any && shared_relation) {
            // See the dynamic-tree pass: with a shared relation only
            // prune when the pruner lies outside the MBR.
            bool contains = true;
            for (size_t i = 0; i < d; ++i) {
              if (go[i] < customers.entry_lo(e, i) ||
                  go[i] > customers.entry_hi(e, i)) {
                contains = false;
                break;
              }
            }
            if (!contains) {
              pruned = true;
              break;
            }
          }
        }
        if (!pruned) {
          stack.push_back(customers.entry_child(e));
        } else {
          ++pruned_entries;
        }
      }
    }
  }
  MetricAdd(CounterId::kBbrsDominanceTests, dominance_tests);
  MetricAdd(CounterId::kBbrsPrunedEntries, pruned_entries);

  std::vector<unsigned char> member(survivors.size(), 0);
  auto verify = [&](size_t i) {
    std::optional<PackedRTree::Id> exclude;
    if (shared_relation) exclude = survivors[i].id;
    member[i] = WindowEmpty(products, survivors[i].point, q, exclude) ? 1 : 0;
  };
  if (pool != nullptr) {
    pool->ParallelFor(0, survivors.size(), verify);
  } else {
    for (size_t i = 0; i < survivors.size(); ++i) verify(i);
  }
  std::vector<PackedRTree::Id> out;
  for (size_t i = 0; i < survivors.size(); ++i) {
    if (member[i] != 0) out.push_back(survivors[i].id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace wnrs
