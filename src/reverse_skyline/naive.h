#ifndef WNRS_REVERSE_SKYLINE_NAIVE_H_
#define WNRS_REVERSE_SKYLINE_NAIVE_H_

#include <vector>

#include "index/rtree.h"

namespace wnrs {

/// Naive bichromatic reverse skyline: probes window_query(c, q) for every
/// customer (paper, Section II). With the early-exit emptiness probe this
/// is O(|C| * probe); it is the correctness oracle for BBRS.
///
/// `shared_relation` means `customers` are the same tuples as the product
/// tree (customer index == product id), so each customer's own tuple is
/// excluded from its window query, as in the paper's worked example.
/// Returns indices into `customers` in ascending order.
std::vector<size_t> ReverseSkylineNaive(const RStarTree& products,
                                        const std::vector<Point>& customers,
                                        const Point& q,
                                        bool shared_relation = false);

}  // namespace wnrs

#endif  // WNRS_REVERSE_SKYLINE_NAIVE_H_
