#ifndef WNRS_REVERSE_SKYLINE_BBRS_H_
#define WNRS_REVERSE_SKYLINE_BBRS_H_

#include <optional>
#include <vector>

#include "index/packed_rtree.h"
#include "index/rtree.h"

namespace wnrs {

class ThreadPool;

/// Global skyline of `tree` w.r.t. `q` (Dellis & Seeger [9]): points not
/// globally dominated, where p globally dominates p' iff p lies in the
/// same q-quadrant as p' and dominates it in q's distance space. Every
/// reverse-skyline point of q is a global skyline point, so this is the
/// BBRS candidate set. Computed with a quadrant-aware branch-and-bound
/// traversal (best-first by transformed L1 MINDIST).
std::vector<RStarTree::Id> GlobalSkylineCandidates(
    const RStarTree& tree, const Point& q,
    std::optional<RStarTree::Id> exclude_id = std::nullopt);

/// BBRS for the monochromatic case (one relation is both P and C, as in
/// the paper's experiments): global-skyline candidate generation followed
/// by a window-query verification per candidate, excluding the candidate's
/// own tuple. Returns RSL(q) as ids, ascending. When `pool` is non-null
/// the per-candidate verification probes run on it; the result is
/// identical to the serial pass (the output is sorted either way).
std::vector<RStarTree::Id> BbrsReverseSkyline(const RStarTree& tree,
                                              const Point& q,
                                              ThreadPool* pool = nullptr);

/// Bichromatic BBRS: customers and products live in separate trees. The
/// product global skyline serves as a pruning set — a customer subtree is
/// skipped when some global-skyline product dynamically dominates q w.r.t.
/// every customer in the subtree's MBR (midpoint rule) — and surviving
/// customers are verified with window queries. `shared_relation` excludes
/// the same-id product from each customer's window (use when both trees
/// index the same tuples). Returns customer ids, ascending. A non-null
/// `pool` parallelizes the per-customer verification probes.
std::vector<RStarTree::Id> BbrsReverseSkylineBichromatic(
    const RStarTree& customers, const RStarTree& products, const Point& q,
    bool shared_relation = false, ThreadPool* pool = nullptr);

/// Packed (frozen read path) twins of the algorithms above: identical
/// traversal order, pruning decisions, node-read and work counters, and
/// output as the dynamic-tree overloads, but running over PackedRTree
/// arenas with flat coordinate slabs (the confirmed global skyline is a
/// dense SoA buffer, not a vector of Points).
std::vector<PackedRTree::Id> GlobalSkylineCandidates(
    const PackedRTree& tree, const Point& q,
    std::optional<PackedRTree::Id> exclude_id = std::nullopt);

std::vector<PackedRTree::Id> BbrsReverseSkyline(const PackedRTree& tree,
                                                const Point& q,
                                                ThreadPool* pool = nullptr);

std::vector<PackedRTree::Id> BbrsReverseSkylineBichromatic(
    const PackedRTree& customers, const PackedRTree& products, const Point& q,
    bool shared_relation = false, ThreadPool* pool = nullptr);

}  // namespace wnrs

#endif  // WNRS_REVERSE_SKYLINE_BBRS_H_
