#ifndef WNRS_REVERSE_SKYLINE_WINDOW_QUERY_H_
#define WNRS_REVERSE_SKYLINE_WINDOW_QUERY_H_

#include <optional>
#include <vector>

#include "index/packed_rtree.h"
#include "index/rtree.h"

namespace wnrs {

/// The window rectangle of customer `c` for query product `q`: centered at
/// c with per-dimension half-extent |c_i - q_i| (paper, Fig. 4).
Rectangle WindowRect(const Point& c, const Point& q);

/// window_query(c, q) over an R-tree of product points: ids of every
/// product that dynamically dominates q w.r.t. c, i.e. the culprit set
/// Λ whose deletion would put c into RSL(q) (Lemma 1). `exclude_id` skips
/// the customer's own tuple when one relation serves as both P and C.
std::vector<RStarTree::Id> WindowQuery(
    const RStarTree& products, const Point& c, const Point& q,
    std::optional<RStarTree::Id> exclude_id = std::nullopt);

/// True iff window_query(c, q) is empty — the reverse-skyline membership
/// test (c in RSL(q) iff true). Stops at the first witness, which is what
/// makes naive reverse skylines tolerable.
bool WindowEmpty(const RStarTree& products, const Point& c, const Point& q,
                 std::optional<RStarTree::Id> exclude_id = std::nullopt);

/// Brute-force window query over a point vector (test oracle).
std::vector<size_t> WindowQueryBrute(
    const std::vector<Point>& products, const Point& c, const Point& q,
    std::optional<size_t> exclude_index = std::nullopt);

/// Skyline of the window contents in `origin`'s distance space, computed
/// by a branch-and-bound traversal that never materializes Λ: nodes not
/// intersecting the window are skipped and nodes whose transformed lower
/// corner is dominated by a confirmed result are pruned. With origin = q
/// this is Algorithm 1's frontier F; with origin = c this is Algorithm
/// 2's F = Λ ∩ DSL(c). Runtime scales with |F| rather than |Λ|, which is
/// what keeps MWP/MQP orders of magnitude below MWQ on large windows.
std::vector<RStarTree::Id> WindowSkyline(
    const RStarTree& products, const Point& c, const Point& q,
    const Point& origin,
    std::optional<RStarTree::Id> exclude_id = std::nullopt);

/// Packed (frozen read path) twins of the probes above: identical
/// traversal order, early-exit points, node-read counts, and results as
/// their dynamic-tree counterparts, but running over the flat arena with
/// the span kernels of geometry/kernels.h — no Point/Rectangle
/// materialization per visited entry.
std::vector<PackedRTree::Id> WindowQuery(
    const PackedRTree& products, const Point& c, const Point& q,
    std::optional<PackedRTree::Id> exclude_id = std::nullopt);

bool WindowEmpty(const PackedRTree& products, const Point& c, const Point& q,
                 std::optional<PackedRTree::Id> exclude_id = std::nullopt);

std::vector<PackedRTree::Id> WindowSkyline(
    const PackedRTree& products, const Point& c, const Point& q,
    const Point& origin,
    std::optional<PackedRTree::Id> exclude_id = std::nullopt);

}  // namespace wnrs

#endif  // WNRS_REVERSE_SKYLINE_WINDOW_QUERY_H_
