#include "reverse_skyline/naive.h"

#include "reverse_skyline/window_query.h"

namespace wnrs {

std::vector<size_t> ReverseSkylineNaive(const RStarTree& products,
                                        const std::vector<Point>& customers,
                                        const Point& q,
                                        bool shared_relation) {
  std::vector<size_t> out;
  for (size_t i = 0; i < customers.size(); ++i) {
    std::optional<RStarTree::Id> exclude;
    if (shared_relation) exclude = static_cast<RStarTree::Id>(i);
    if (WindowEmpty(products, customers[i], q, exclude)) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace wnrs
