#include "reverse_skyline/window_query.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.h"
#include "common/metrics.h"
#include "geometry/dominance.h"
#include "geometry/transform.h"

namespace wnrs {

Rectangle WindowRect(const Point& c, const Point& q) {
  WNRS_CHECK(c.dims() == q.dims());
  Point lo(c.dims());
  Point hi(c.dims());
  for (size_t i = 0; i < c.dims(); ++i) {
    const double ext = std::fabs(c[i] - q[i]);
    lo[i] = c[i] - ext;
    hi[i] = c[i] + ext;
  }
  return Rectangle(std::move(lo), std::move(hi));
}

std::vector<RStarTree::Id> WindowQuery(
    const RStarTree& products, const Point& c, const Point& q,
    std::optional<RStarTree::Id> exclude_id) {
  MetricAdd(CounterId::kWindowProbes);
  std::vector<RStarTree::Id> out;
  products.RangeQuery(WindowRect(c, q),
                      [&](const Rectangle& mbr, RStarTree::Id id) {
                        if (exclude_id.has_value() && id == *exclude_id) {
                          return true;
                        }
                        // The MBR intersecting the closed window is
                        // necessary but not sufficient: dynamic dominance
                        // needs strictness in some dimension.
                        if (InWindow(mbr.lo(), c, q)) out.push_back(id);
                        return true;
                      });
  return out;
}

bool WindowEmpty(const RStarTree& products, const Point& c, const Point& q,
                 std::optional<RStarTree::Id> exclude_id) {
  MetricAdd(CounterId::kWindowProbes);
  return !products.AnyInRange(
      WindowRect(c, q), [&](const Rectangle& mbr, RStarTree::Id id) {
        if (exclude_id.has_value() && id == *exclude_id) return false;
        return InWindow(mbr.lo(), c, q);
      });
}

std::vector<RStarTree::Id> WindowSkyline(
    const RStarTree& products, const Point& c, const Point& q,
    const Point& origin, std::optional<RStarTree::Id> exclude_id) {
  WNRS_CHECK(c.dims() == q.dims());
  WNRS_CHECK(origin.dims() == q.dims());
  const Rectangle window = WindowRect(c, q);

  struct Item {
    double mindist;
    const RStarTree::Node* node;  // nullptr => data entry
    Point transformed;
    RStarTree::Id id;
    bool operator>(const Item& other) const {
      return mindist > other.mindist;
    }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  std::vector<Point> skyline_points;
  std::vector<RStarTree::Id> skyline_ids;
  // Work counts accumulate locally and flush once on return, so the inner
  // dominance loop stays free of instrumentation.
  uint64_t heap_pops = 0;
  uint64_t dominance_tests = 0;
  uint64_t pruned_entries = 0;
  auto dominated = [&skyline_points, &dominance_tests](const Point& t) {
    for (const Point& s : skyline_points) {
      ++dominance_tests;
      if (Dominates(s, t)) return true;
    }
    return false;
  };
  auto flush = [&] {
    MetricAdd(CounterId::kWindowProbes);
    MetricAdd(CounterId::kWindowHeapPops, heap_pops);
    MetricAdd(CounterId::kWindowDominanceTests, dominance_tests);
    MetricAdd(CounterId::kWindowPrunedEntries, pruned_entries);
  };

  if (products.size() == 0) {
    flush();
    return skyline_ids;
  }
  heap.push({0.0, products.root(), Point(), -1});
  while (!heap.empty()) {
    Item item = heap.top();
    heap.pop();
    ++heap_pops;
    if (item.node == nullptr) {
      if (!dominated(item.transformed)) {
        skyline_points.push_back(std::move(item.transformed));
        skyline_ids.push_back(item.id);
      } else {
        ++pruned_entries;
      }
      continue;
    }
    products.CountNodeRead();
    for (const RStarTree::Entry& e : item.node->entries) {
      if (!e.mbr.Intersects(window)) continue;
      if (item.node->is_leaf) {
        if (exclude_id.has_value() && e.id == *exclude_id) continue;
        // MBR intersection is necessary but not sufficient for window
        // membership (dynamic dominance needs strictness).
        if (!InWindow(e.mbr.lo(), c, q)) continue;
        Point t = ToDistanceSpace(e.mbr.lo(), origin);
        if (dominated(t)) {
          ++pruned_entries;
          continue;
        }
        const double dist = t.L1Norm();
        heap.push({dist, nullptr, std::move(t), e.id});
      } else {
        const Rectangle t = RectToDistanceSpace(e.mbr, origin);
        if (dominated(t.lo())) {
          ++pruned_entries;
          continue;
        }
        heap.push({t.lo().L1Norm(), e.child, t.lo(), -1});
      }
    }
  }
  std::sort(skyline_ids.begin(), skyline_ids.end());
  flush();
  return skyline_ids;
}

std::vector<size_t> WindowQueryBrute(const std::vector<Point>& products,
                                     const Point& c, const Point& q,
                                     std::optional<size_t> exclude_index) {
  std::vector<size_t> out;
  for (size_t i = 0; i < products.size(); ++i) {
    if (exclude_index.has_value() && i == *exclude_index) continue;
    if (InWindow(products[i], c, q)) out.push_back(i);
  }
  return out;
}

}  // namespace wnrs
