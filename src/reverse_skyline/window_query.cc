#include "reverse_skyline/window_query.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "geometry/dominance.h"
#include "geometry/kernels.h"
#include "geometry/transform.h"

namespace wnrs {

Rectangle WindowRect(const Point& c, const Point& q) {
  WNRS_CHECK(c.dims() == q.dims());
  Point lo(c.dims());
  Point hi(c.dims());
  for (size_t i = 0; i < c.dims(); ++i) {
    const double ext = std::fabs(c[i] - q[i]);
    lo[i] = c[i] - ext;
    hi[i] = c[i] + ext;
  }
  return Rectangle(std::move(lo), std::move(hi));
}

std::vector<RStarTree::Id> WindowQuery(
    const RStarTree& products, const Point& c, const Point& q,
    std::optional<RStarTree::Id> exclude_id) {
  MetricAdd(CounterId::kWindowProbes);
  std::vector<RStarTree::Id> out;
  products.RangeQuery(WindowRect(c, q),
                      [&](const Rectangle& mbr, RStarTree::Id id) {
                        if (exclude_id.has_value() && id == *exclude_id) {
                          return true;
                        }
                        // The MBR intersecting the closed window is
                        // necessary but not sufficient: dynamic dominance
                        // needs strictness in some dimension.
                        if (InWindow(mbr.lo(), c, q)) out.push_back(id);
                        return true;
                      });
  // Traversal order depends on tree shape; ascending ids make the hit
  // list canonical so sharded unions can merge bit-identically.
  std::sort(out.begin(), out.end());
  return out;
}

bool WindowEmpty(const RStarTree& products, const Point& c, const Point& q,
                 std::optional<RStarTree::Id> exclude_id) {
  MetricAdd(CounterId::kWindowProbes);
  return !products.AnyInRange(
      WindowRect(c, q), [&](const Rectangle& mbr, RStarTree::Id id) {
        if (exclude_id.has_value() && id == *exclude_id) return false;
        return InWindow(mbr.lo(), c, q);
      });
}

std::vector<RStarTree::Id> WindowSkyline(
    const RStarTree& products, const Point& c, const Point& q,
    const Point& origin, std::optional<RStarTree::Id> exclude_id) {
  WNRS_CHECK(c.dims() == q.dims());
  WNRS_CHECK(origin.dims() == q.dims());
  const Rectangle window = WindowRect(c, q);

  struct Item {
    double mindist;
    const RStarTree::Node* node;  // nullptr => data entry
    Point transformed;
    RStarTree::Id id;
    bool operator>(const Item& other) const {
      return mindist > other.mindist;
    }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  std::vector<Point> skyline_points;
  std::vector<RStarTree::Id> skyline_ids;
  // Work counts accumulate locally and flush once on return, so the inner
  // dominance loop stays free of instrumentation.
  uint64_t heap_pops = 0;
  uint64_t dominance_tests = 0;
  uint64_t pruned_entries = 0;
  auto dominated = [&skyline_points, &dominance_tests](const Point& t) {
    for (const Point& s : skyline_points) {
      ++dominance_tests;
      if (Dominates(s, t)) return true;
    }
    return false;
  };
  auto flush = [&] {
    MetricAdd(CounterId::kWindowProbes);
    MetricAdd(CounterId::kWindowHeapPops, heap_pops);
    MetricAdd(CounterId::kWindowDominanceTests, dominance_tests);
    MetricAdd(CounterId::kWindowPrunedEntries, pruned_entries);
  };

  if (products.size() == 0) {
    flush();
    return skyline_ids;
  }
  heap.push({0.0, products.root(), Point(), -1});
  while (!heap.empty()) {
    // top() is const, but the element is discarded by the pop right
    // after — moving it out saves a Point copy per pop.
    Item item = std::move(const_cast<Item&>(heap.top()));
    heap.pop();
    ++heap_pops;
    if (item.node == nullptr) {
      if (!dominated(item.transformed)) {
        skyline_points.push_back(std::move(item.transformed));
        skyline_ids.push_back(item.id);
      } else {
        ++pruned_entries;
      }
      continue;
    }
    products.CountNodeRead();
    for (const RStarTree::Entry& e : item.node->entries) {
      if (!e.mbr.Intersects(window)) continue;
      if (item.node->is_leaf) {
        if (exclude_id.has_value() && e.id == *exclude_id) continue;
        // MBR intersection is necessary but not sufficient for window
        // membership (dynamic dominance needs strictness).
        if (!InWindow(e.mbr.lo(), c, q)) continue;
        Point t = ToDistanceSpace(e.mbr.lo(), origin);
        if (dominated(t)) {
          ++pruned_entries;
          continue;
        }
        const double dist = t.L1Norm();
        heap.push({dist, nullptr, std::move(t), e.id});
      } else {
        const Rectangle t = RectToDistanceSpace(e.mbr, origin);
        if (dominated(t.lo())) {
          ++pruned_entries;
          continue;
        }
        heap.push({t.lo().L1Norm(), e.child, t.lo(), -1});
      }
    }
  }
  std::sort(skyline_ids.begin(), skyline_ids.end());
  flush();
  return skyline_ids;
}

namespace {

/// Packed twin of RStarTree::RangeQuery filtered to window members: same
/// stack discipline, the same node-read accounting (one per popped node),
/// and the same early stop, but evaluating whole nodes at a time with the
/// SoA batch kernels — one overlap mask per node, plus one in-window mask
/// per leaf. `visit(id)` runs for every leaf entry that is inside the
/// customer window (strictness included) and returns false to stop the
/// whole traversal.
template <typename Visit>
void PackedWindowScan(const PackedRTree& tree, const Rectangle& window,
                      const double* cs, const double* qs,
                      const Visit& visit) {
  const SoaPlanes planes = tree.planes();
  const double* wlo = window.lo().coords().data();
  const double* whi = window.hi().coords().data();
  const size_t cap = KernelPad(tree.max_node_entries());
  std::vector<unsigned char> hit(cap);
  std::vector<unsigned char> inw(cap);
  std::vector<uint32_t> stack = {tree.root()};
  while (!stack.empty()) {
    const uint32_t ni = stack.back();
    stack.pop_back();
    tree.CountNodeRead();
    const PackedRTree::Node& n = tree.node(ni);
    BoxOverlapMaskSoa(planes, n.first_entry, n.entry_count, wlo, whi,
                      hit.data());
    if (n.is_leaf != 0) {
      // Intersecting the closed window is necessary but not sufficient:
      // window membership is dynamic dominance, which needs strictness.
      InWindowMaskSoa(planes, n.first_entry, n.entry_count, cs, qs,
                      inw.data());
      for (uint32_t k = 0; k < n.entry_count; ++k) {
        if ((hit[k] & inw[k]) == 0) continue;
        if (!visit(tree.entry_id(n.first_entry + k))) return;
      }
    } else {
      for (uint32_t k = 0; k < n.entry_count; ++k) {
        if (hit[k] == 0) continue;
        stack.push_back(tree.entry_child(n.first_entry + k));
      }
    }
  }
}

}  // namespace

std::vector<PackedRTree::Id> WindowQuery(
    const PackedRTree& products, const Point& c, const Point& q,
    std::optional<PackedRTree::Id> exclude_id) {
  MetricAdd(CounterId::kWindowProbes);
  const double* cs = c.coords().data();
  const double* qs = q.coords().data();
  std::vector<PackedRTree::Id> out;
  PackedWindowScan(products, WindowRect(c, q), cs, qs,
                   [&](PackedRTree::Id id) {
                     if (!exclude_id.has_value() || id != *exclude_id) {
                       out.push_back(id);
                     }
                     return true;
                   });
  // Same canonical ascending order as the dynamic variant.
  std::sort(out.begin(), out.end());
  return out;
}

bool WindowEmpty(const PackedRTree& products, const Point& c, const Point& q,
                 std::optional<PackedRTree::Id> exclude_id) {
  MetricAdd(CounterId::kWindowProbes);
  const double* cs = c.coords().data();
  const double* qs = q.coords().data();
  bool found = false;
  PackedWindowScan(products, WindowRect(c, q), cs, qs,
                   [&](PackedRTree::Id id) {
                     if (exclude_id.has_value() && id == *exclude_id) {
                       return true;
                     }
                     found = true;
                     return false;  // Stop the traversal.
                   });
  return !found;
}

std::vector<PackedRTree::Id> WindowSkyline(
    const PackedRTree& products, const Point& c, const Point& q,
    const Point& origin, std::optional<PackedRTree::Id> exclude_id) {
  WNRS_CHECK(c.dims() == q.dims());
  WNRS_CHECK(origin.dims() == q.dims());
  const size_t d = products.dims();
  const Rectangle window = WindowRect(c, q);
  const double* wlo = window.lo().coords().data();
  const double* whi = window.hi().coords().data();
  const double* cs = c.coords().data();
  const double* qs = q.coords().data();
  const double* os = origin.coords().data();

  struct Item {
    double mindist;
    uint32_t node;  // kNoNode => data entry
    size_t coord;   // offset of the transformed point in `pool`
    PackedRTree::Id id;
    bool operator>(const Item& other) const {
      return mindist > other.mindist;
    }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  std::vector<double> pool;     // transformed candidate points, d-strided
  std::vector<double> skyline;  // confirmed frontier coords, d-strided
  std::vector<PackedRTree::Id> skyline_ids;
  uint64_t heap_pops = 0;
  uint64_t dominance_tests = 0;
  uint64_t pruned_entries = 0;
  auto flush = [&] {
    MetricAdd(CounterId::kWindowProbes);
    MetricAdd(CounterId::kWindowHeapPops, heap_pops);
    MetricAdd(CounterId::kWindowDominanceTests, dominance_tests);
    MetricAdd(CounterId::kWindowPrunedEntries, pruned_entries);
  };

  if (products.size() == 0) {
    flush();
    return skyline_ids;
  }
  // Per-node batch scratch: overlap / in-window masks, transformed
  // coordinates in SoA columns (stride cap), and their L1 norms. Batch
  // results for entries a filter later skips are computed and discarded
  // — unobservable, since skyline membership only changes on heap pops.
  const SoaPlanes planes = products.planes();
  const size_t cap = KernelPad(products.max_node_entries());
  std::vector<unsigned char> hit(cap);
  std::vector<unsigned char> inw(cap);
  std::vector<double> tcoords(d * cap);
  std::vector<double> tdist(cap);
  std::vector<double> buf(d);
  // The blocked kernel has no early exit inside a block, so the packed
  // path reports scan width (skyline size per test) rather than the
  // dynamic path's early-exit depth; pruning decisions are identical.
  auto dominated = [&](const double* t) {
    dominance_tests += skyline_ids.size();
    return DominatedByAny(skyline.data(), skyline_ids.size(), d, t);
  };
  heap.push({0.0, products.root(), 0, -1});
  while (!heap.empty()) {
    const Item item = heap.top();
    heap.pop();
    ++heap_pops;
    if (item.node == PackedRTree::kNoNode) {
      const double* t = pool.data() + item.coord;
      if (!dominated(t)) {
        skyline.insert(skyline.end(), t, t + d);
        skyline_ids.push_back(item.id);
      } else {
        ++pruned_entries;
      }
      continue;
    }
    products.CountNodeRead();
    const PackedRTree::Node& n = products.node(item.node);
    BoxOverlapMaskSoa(planes, n.first_entry, n.entry_count, wlo, whi,
                      hit.data());
    if (n.is_leaf != 0) {
      InWindowMaskSoa(planes, n.first_entry, n.entry_count, cs, qs,
                      inw.data());
      ToDistanceSpaceBatchSoa(planes, n.first_entry, n.entry_count, os,
                              tcoords.data(), cap, tdist.data());
      for (uint32_t k = 0; k < n.entry_count; ++k) {
        if (hit[k] == 0) continue;
        const PackedRTree::Id id = products.entry_id(n.first_entry + k);
        if (exclude_id.has_value() && id == *exclude_id) continue;
        if (inw[k] == 0) continue;
        for (size_t j = 0; j < d; ++j) buf[j] = tcoords[j * cap + k];
        if (dominated(buf.data())) {
          ++pruned_entries;
          continue;
        }
        const size_t off = pool.size();
        pool.insert(pool.end(), buf.begin(), buf.end());
        heap.push({tdist[k], PackedRTree::kNoNode, off, id});
      }
    } else {
      MinDistCornerBatchSoa(planes, n.first_entry, n.entry_count, os,
                            tcoords.data(), cap, tdist.data());
      for (uint32_t k = 0; k < n.entry_count; ++k) {
        if (hit[k] == 0) continue;
        for (size_t j = 0; j < d; ++j) buf[j] = tcoords[j * cap + k];
        if (dominated(buf.data())) {
          ++pruned_entries;
          continue;
        }
        heap.push({tdist[k], products.entry_child(n.first_entry + k), 0, -1});
      }
    }
  }
  std::sort(skyline_ids.begin(), skyline_ids.end());
  flush();
  return skyline_ids;
}

std::vector<size_t> WindowQueryBrute(const std::vector<Point>& products,
                                     const Point& c, const Point& q,
                                     std::optional<size_t> exclude_index) {
  std::vector<size_t> out;
  for (size_t i = 0; i < products.size(); ++i) {
    if (exclude_index.has_value() && i == *exclude_index) continue;
    if (InWindow(products[i], c, q)) out.push_back(i);
  }
  return out;
}

}  // namespace wnrs
