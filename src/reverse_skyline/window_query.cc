#include "reverse_skyline/window_query.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "geometry/dominance.h"
#include "geometry/kernels.h"
#include "geometry/transform.h"

namespace wnrs {

Rectangle WindowRect(const Point& c, const Point& q) {
  WNRS_CHECK(c.dims() == q.dims());
  Point lo(c.dims());
  Point hi(c.dims());
  for (size_t i = 0; i < c.dims(); ++i) {
    const double ext = std::fabs(c[i] - q[i]);
    lo[i] = c[i] - ext;
    hi[i] = c[i] + ext;
  }
  return Rectangle(std::move(lo), std::move(hi));
}

std::vector<RStarTree::Id> WindowQuery(
    const RStarTree& products, const Point& c, const Point& q,
    std::optional<RStarTree::Id> exclude_id) {
  MetricAdd(CounterId::kWindowProbes);
  std::vector<RStarTree::Id> out;
  products.RangeQuery(WindowRect(c, q),
                      [&](const Rectangle& mbr, RStarTree::Id id) {
                        if (exclude_id.has_value() && id == *exclude_id) {
                          return true;
                        }
                        // The MBR intersecting the closed window is
                        // necessary but not sufficient: dynamic dominance
                        // needs strictness in some dimension.
                        if (InWindow(mbr.lo(), c, q)) out.push_back(id);
                        return true;
                      });
  return out;
}

bool WindowEmpty(const RStarTree& products, const Point& c, const Point& q,
                 std::optional<RStarTree::Id> exclude_id) {
  MetricAdd(CounterId::kWindowProbes);
  return !products.AnyInRange(
      WindowRect(c, q), [&](const Rectangle& mbr, RStarTree::Id id) {
        if (exclude_id.has_value() && id == *exclude_id) return false;
        return InWindow(mbr.lo(), c, q);
      });
}

std::vector<RStarTree::Id> WindowSkyline(
    const RStarTree& products, const Point& c, const Point& q,
    const Point& origin, std::optional<RStarTree::Id> exclude_id) {
  WNRS_CHECK(c.dims() == q.dims());
  WNRS_CHECK(origin.dims() == q.dims());
  const Rectangle window = WindowRect(c, q);

  struct Item {
    double mindist;
    const RStarTree::Node* node;  // nullptr => data entry
    Point transformed;
    RStarTree::Id id;
    bool operator>(const Item& other) const {
      return mindist > other.mindist;
    }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  std::vector<Point> skyline_points;
  std::vector<RStarTree::Id> skyline_ids;
  // Work counts accumulate locally and flush once on return, so the inner
  // dominance loop stays free of instrumentation.
  uint64_t heap_pops = 0;
  uint64_t dominance_tests = 0;
  uint64_t pruned_entries = 0;
  auto dominated = [&skyline_points, &dominance_tests](const Point& t) {
    for (const Point& s : skyline_points) {
      ++dominance_tests;
      if (Dominates(s, t)) return true;
    }
    return false;
  };
  auto flush = [&] {
    MetricAdd(CounterId::kWindowProbes);
    MetricAdd(CounterId::kWindowHeapPops, heap_pops);
    MetricAdd(CounterId::kWindowDominanceTests, dominance_tests);
    MetricAdd(CounterId::kWindowPrunedEntries, pruned_entries);
  };

  if (products.size() == 0) {
    flush();
    return skyline_ids;
  }
  heap.push({0.0, products.root(), Point(), -1});
  while (!heap.empty()) {
    // top() is const, but the element is discarded by the pop right
    // after — moving it out saves a Point copy per pop.
    Item item = std::move(const_cast<Item&>(heap.top()));
    heap.pop();
    ++heap_pops;
    if (item.node == nullptr) {
      if (!dominated(item.transformed)) {
        skyline_points.push_back(std::move(item.transformed));
        skyline_ids.push_back(item.id);
      } else {
        ++pruned_entries;
      }
      continue;
    }
    products.CountNodeRead();
    for (const RStarTree::Entry& e : item.node->entries) {
      if (!e.mbr.Intersects(window)) continue;
      if (item.node->is_leaf) {
        if (exclude_id.has_value() && e.id == *exclude_id) continue;
        // MBR intersection is necessary but not sufficient for window
        // membership (dynamic dominance needs strictness).
        if (!InWindow(e.mbr.lo(), c, q)) continue;
        Point t = ToDistanceSpace(e.mbr.lo(), origin);
        if (dominated(t)) {
          ++pruned_entries;
          continue;
        }
        const double dist = t.L1Norm();
        heap.push({dist, nullptr, std::move(t), e.id});
      } else {
        const Rectangle t = RectToDistanceSpace(e.mbr, origin);
        if (dominated(t.lo())) {
          ++pruned_entries;
          continue;
        }
        heap.push({t.lo().L1Norm(), e.child, t.lo(), -1});
      }
    }
  }
  std::sort(skyline_ids.begin(), skyline_ids.end());
  flush();
  return skyline_ids;
}

namespace {

/// Packed twin of RStarTree::RangeQuery: same stack discipline, the same
/// node-read accounting (one per popped node), and the same early stop,
/// but testing window intersection directly on the min-max-interleaved
/// MBR slab. `visit(mbr, id)` returns false to stop the whole traversal.
template <typename Visit>
void PackedRangeQuery(const PackedRTree& tree, const Rectangle& window,
                      const Visit& visit) {
  const size_t d = tree.dims();
  const double* wlo = window.lo().coords().data();
  const double* whi = window.hi().coords().data();
  std::vector<uint32_t> stack = {tree.root()};
  while (!stack.empty()) {
    const uint32_t ni = stack.back();
    stack.pop_back();
    tree.CountNodeRead();
    const PackedRTree::Node& n = tree.node(ni);
    const uint32_t end = n.first_entry + n.entry_count;
    for (uint32_t e = n.first_entry; e < end; ++e) {
      const double* mbr = tree.entry_mbr(e);
      bool intersects = true;
      for (size_t j = 0; j < d; ++j) {
        if (mbr[2 * j + 1] < wlo[j] || mbr[2 * j] > whi[j]) {
          intersects = false;
          break;
        }
      }
      if (!intersects) continue;
      if (n.is_leaf != 0) {
        if (!visit(mbr, tree.entry_id(e))) return;
      } else {
        stack.push_back(tree.entry_child(e));
      }
    }
  }
}

}  // namespace

std::vector<PackedRTree::Id> WindowQuery(
    const PackedRTree& products, const Point& c, const Point& q,
    std::optional<PackedRTree::Id> exclude_id) {
  MetricAdd(CounterId::kWindowProbes);
  const size_t d = products.dims();
  const double* cs = c.coords().data();
  const double* qs = q.coords().data();
  std::vector<PackedRTree::Id> out;
  PackedRangeQuery(products, WindowRect(c, q),
                   [&](const double* mbr, PackedRTree::Id id) {
                     if (exclude_id.has_value() && id == *exclude_id) {
                       return true;
                     }
                     if (InWindowSpan(mbr, 2, cs, qs, d)) out.push_back(id);
                     return true;
                   });
  return out;
}

bool WindowEmpty(const PackedRTree& products, const Point& c, const Point& q,
                 std::optional<PackedRTree::Id> exclude_id) {
  MetricAdd(CounterId::kWindowProbes);
  const size_t d = products.dims();
  const double* cs = c.coords().data();
  const double* qs = q.coords().data();
  bool found = false;
  PackedRangeQuery(products, WindowRect(c, q),
                   [&](const double* mbr, PackedRTree::Id id) {
                     if (exclude_id.has_value() && id == *exclude_id) {
                       return true;
                     }
                     if (InWindowSpan(mbr, 2, cs, qs, d)) {
                       found = true;
                       return false;  // Stop the traversal.
                     }
                     return true;
                   });
  return !found;
}

std::vector<PackedRTree::Id> WindowSkyline(
    const PackedRTree& products, const Point& c, const Point& q,
    const Point& origin, std::optional<PackedRTree::Id> exclude_id) {
  WNRS_CHECK(c.dims() == q.dims());
  WNRS_CHECK(origin.dims() == q.dims());
  const size_t d = products.dims();
  const Rectangle window = WindowRect(c, q);
  const double* wlo = window.lo().coords().data();
  const double* whi = window.hi().coords().data();
  const double* cs = c.coords().data();
  const double* qs = q.coords().data();
  const double* os = origin.coords().data();

  struct Item {
    double mindist;
    uint32_t node;  // kNoNode => data entry
    size_t coord;   // offset of the transformed point in `pool`
    PackedRTree::Id id;
    bool operator>(const Item& other) const {
      return mindist > other.mindist;
    }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  std::vector<double> pool;     // transformed candidate points, d-strided
  std::vector<double> skyline;  // confirmed frontier coords, d-strided
  std::vector<PackedRTree::Id> skyline_ids;
  uint64_t heap_pops = 0;
  uint64_t dominance_tests = 0;
  uint64_t pruned_entries = 0;
  auto flush = [&] {
    MetricAdd(CounterId::kWindowProbes);
    MetricAdd(CounterId::kWindowHeapPops, heap_pops);
    MetricAdd(CounterId::kWindowDominanceTests, dominance_tests);
    MetricAdd(CounterId::kWindowPrunedEntries, pruned_entries);
  };

  if (products.size() == 0) {
    flush();
    return skyline_ids;
  }
  std::vector<double> buf(d);
  // The blocked kernel has no early exit inside a block, so the packed
  // path reports scan width (skyline size per test) rather than the
  // dynamic path's early-exit depth; pruning decisions are identical.
  auto dominated = [&](const double* t) {
    dominance_tests += skyline_ids.size();
    return DominatedByAny(skyline.data(), skyline_ids.size(), d, t);
  };
  heap.push({0.0, products.root(), 0, -1});
  while (!heap.empty()) {
    const Item item = heap.top();
    heap.pop();
    ++heap_pops;
    if (item.node == PackedRTree::kNoNode) {
      const double* t = pool.data() + item.coord;
      if (!dominated(t)) {
        skyline.insert(skyline.end(), t, t + d);
        skyline_ids.push_back(item.id);
      } else {
        ++pruned_entries;
      }
      continue;
    }
    products.CountNodeRead();
    const PackedRTree::Node& n = products.node(item.node);
    const uint32_t end = n.first_entry + n.entry_count;
    for (uint32_t e = n.first_entry; e < end; ++e) {
      const double* mbr = products.entry_mbr(e);
      bool intersects = true;
      for (size_t j = 0; j < d; ++j) {
        if (mbr[2 * j + 1] < wlo[j] || mbr[2 * j] > whi[j]) {
          intersects = false;
          break;
        }
      }
      if (!intersects) continue;
      if (n.is_leaf != 0) {
        const PackedRTree::Id id = products.entry_id(e);
        if (exclude_id.has_value() && id == *exclude_id) continue;
        if (!InWindowSpan(mbr, 2, cs, qs, d)) continue;
        ToDistanceSpaceSpan(mbr, 2, os, d, buf.data());
        if (dominated(buf.data())) {
          ++pruned_entries;
          continue;
        }
        const double dist = L1NormSpan(buf.data(), d);
        const size_t off = pool.size();
        pool.insert(pool.end(), buf.begin(), buf.end());
        heap.push({dist, PackedRTree::kNoNode, off, id});
      } else {
        BoxMinDistCornerSpan(mbr, os, d, buf.data());
        if (dominated(buf.data())) {
          ++pruned_entries;
          continue;
        }
        heap.push(
            {L1NormSpan(buf.data(), d), products.entry_child(e), 0, -1});
      }
    }
  }
  std::sort(skyline_ids.begin(), skyline_ids.end());
  flush();
  return skyline_ids;
}

std::vector<size_t> WindowQueryBrute(const std::vector<Point>& products,
                                     const Point& c, const Point& q,
                                     std::optional<size_t> exclude_index) {
  std::vector<size_t> out;
  for (size_t i = 0; i < products.size(); ++i) {
    if (exclude_index.has_value() && i == *exclude_index) continue;
    if (InWindow(products[i], c, q)) out.push_back(i);
  }
  return out;
}

}  // namespace wnrs
