#ifndef WNRS_CORE_MWP_H_
#define WNRS_CORE_MWP_H_

#include <optional>
#include <vector>

#include "core/cost.h"
#include "index/rtree.h"

namespace wnrs {

/// Result of Algorithm 1 (Modify Why-Not Point).
struct MwpResult {
  /// True iff c_t was already in RSL(q); candidates then hold just c_t at
  /// cost 0.
  bool already_member = false;
  /// The culprit set Λ returned by the window query.
  std::vector<RStarTree::Id> culprits;
  /// Candidate new locations c_t*, cost-ascending. These lie on the
  /// closed boundary of the feasible region ("pay at least 3K more");
  /// nudge by epsilon toward q for strict reverse-skyline membership.
  std::vector<Candidate> candidates;
};

/// Algorithm 1: moves the why-not customer c_t the minimum amount so that
/// q enters DSL(c_t*) (and hence c_t* enters RSL(q)).
///
/// Steps: window query for Λ; frontier F = q-side skyline of Λ; per
/// frontier point the escape threshold u = midpoint(e, q) per dimension
/// (Eqn. 1 — stated there for the e <= q orientation; the midpoint form
/// is its orientation-independent generalization, applied after mirroring
/// each dimension so that c_t <= q); staircase candidates with min-merge
/// and c_t anchoring (Eqns. 2-3); costs via `cost_model`'s beta weights.
MwpResult ModifyWhyNotPoint(
    const RStarTree& tree, const std::vector<Point>& products,
    const Point& c_t, const Point& q, const CostModel& cost_model,
    size_t sort_dim = 0,
    std::optional<RStarTree::Id> exclude_id = std::nullopt);

/// ModifyWhyNotPoint with the frontier computed directly by a
/// branch-and-bound window-skyline traversal (WindowSkyline) instead of
/// materializing Λ — runtime scales with |F| rather than |Λ|. Candidates
/// are identical; `culprits` then holds only the frontier ids.
MwpResult ModifyWhyNotPointFast(
    const RStarTree& tree, const std::vector<Point>& products,
    const Point& c_t, const Point& q, const CostModel& cost_model,
    size_t sort_dim = 0,
    std::optional<RStarTree::Id> exclude_id = std::nullopt);

/// Index-free tail of ModifyWhyNotPoint: takes the culprit set Λ already
/// materialized (any provider — a tree window query, or a sharded union of
/// per-shard window queries) and runs the identical frontier extraction,
/// staircase generation and costing. `culprits` must be the exact window
/// hit set for (c_t, q); the caller owns ordering (ascending ids is the
/// canonical form the tree-based variants produce).
MwpResult ModifyWhyNotPointFromCulprits(
    const std::vector<Point>& products, std::vector<RStarTree::Id> culprits,
    const Point& c_t, const Point& q, const CostModel& cost_model,
    size_t sort_dim = 0);

/// Index-free tail of ModifyWhyNotPointFast: `frontier_ids` must be the
/// window skyline of (c_t, q) in q's distance space (what WindowSkyline
/// with origin q returns — or a dominance-filtered union of per-shard
/// window skylines).
MwpResult ModifyWhyNotPointFromFrontier(
    const std::vector<Point>& products,
    std::vector<RStarTree::Id> frontier_ids, const Point& c_t, const Point& q,
    const CostModel& cost_model, size_t sort_dim = 0);

}  // namespace wnrs

#endif  // WNRS_CORE_MWP_H_
