#include "core/prospect.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace wnrs {

std::vector<Prospect> RankProspects(const WhyNotEngine& engine,
                                    const Point& q,
                                    const ProspectOptions& options) {
  WNRS_CHECK(q.dims() == engine.products().dims);

  // Candidate customers: everyone within the preference radius (via the
  // index when the radius is finite), minus current members.
  std::vector<size_t> candidates;
  if (std::isfinite(options.max_preference_distance)) {
    Point lo(q.dims());
    Point hi(q.dims());
    for (size_t i = 0; i < q.dims(); ++i) {
      lo[i] = q[i] - options.max_preference_distance;
      hi[i] = q[i] + options.max_preference_distance;
    }
    candidates = engine.CustomersInRange(Rectangle(lo, hi));
    // The box over-approximates the L1 ball; filter exactly.
    candidates.erase(
        std::remove_if(candidates.begin(), candidates.end(),
                       [&](size_t c) {
                         return engine.customers().points[c].L1Distance(q) >
                                options.max_preference_distance;
                       }),
        candidates.end());
  } else {
    candidates.resize(engine.customers().points.size());
    for (size_t c = 0; c < candidates.size(); ++c) candidates[c] = c;
  }

  std::vector<Prospect> prospects;
  for (size_t c : candidates) {
    if (engine.IsReverseSkylineMember(c, q)) continue;
    const MwqResult mwq =
        options.use_approx ? engine.ModifyBothApprox(c, q)
                           : engine.ModifyBoth(c, q);
    if (mwq.already_member || mwq.query_candidates.empty()) continue;
    Prospect p;
    p.customer = c;
    p.cost = mwq.best_cost;
    p.free_win = mwq.overlap;
    p.query_move = mwq.query_candidates.front().point;
    if (!mwq.why_not_candidates.empty()) {
      p.customer_move = mwq.why_not_candidates.front().point;
    }
    prospects.push_back(std::move(p));
  }

  std::sort(prospects.begin(), prospects.end(),
            [](const Prospect& a, const Prospect& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              if (a.free_win != b.free_win) return a.free_win;
              return a.customer < b.customer;
            });
  if (prospects.size() > options.max_prospects) {
    prospects.resize(options.max_prospects);
  }
  return prospects;
}

}  // namespace wnrs
