#include "core/explain.h"

#include <utility>

#include "common/logging.h"
#include "geometry/dominance.h"
#include "geometry/transform.h"
#include "reverse_skyline/window_query.h"
#include "skyline/bnl.h"

namespace wnrs {

WhyNotExplanation ExplainWhyNot(const RStarTree& tree,
                                const std::vector<Point>& products,
                                const Point& c_t, const Point& q,
                                std::optional<RStarTree::Id> exclude_id) {
  return ExplainWhyNotFromCulprits(
      products, WindowQuery(tree, c_t, q, exclude_id), q);
}

WhyNotExplanation ExplainWhyNotFromCulprits(
    const std::vector<Point>& products, std::vector<RStarTree::Id> culprits,
    const Point& q) {
  WhyNotExplanation out;
  out.culprits = std::move(culprits);
  if (out.culprits.empty()) {
    out.already_member = true;
    return out;
  }
  // Frontier: culprits on the q-side skyline of Λ. Algorithm 1 states
  // this as pairwise O(|Λ|^2) dominance tests; BNL over the q-transformed
  // culprits gives the same set in O(|Λ| * |F|).
  std::vector<Point> transformed;
  transformed.reserve(out.culprits.size());
  for (RStarTree::Id id : out.culprits) {
    WNRS_CHECK(static_cast<size_t>(id) < products.size());
    transformed.push_back(
        ToDistanceSpace(products[static_cast<size_t>(id)], q));
  }
  for (size_t idx : SkylineIndicesBnl(transformed)) {
    out.frontier.push_back(out.culprits[idx]);
  }
  return out;
}

}  // namespace wnrs
