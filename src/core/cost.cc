#include "core/cost.h"

#include <algorithm>

#include "common/logging.h"

namespace wnrs {

CostModel::CostModel(const Rectangle& bounds, std::vector<double> alpha,
                     std::vector<double> beta)
    : normalizer_(bounds), alpha_(std::move(alpha)), beta_(std::move(beta)) {
  WNRS_CHECK(alpha_.size() == bounds.dims());
  WNRS_CHECK(beta_.size() == bounds.dims());
}

CostModel CostModel::EqualWeightsFor(const Rectangle& bounds) {
  return CostModel(bounds, EqualWeights(bounds.dims()),
                   EqualWeights(bounds.dims()));
}

double CostModel::QueryMoveCost(const Point& q, const Point& q_star) const {
  return normalizer_.NormalizedWeightedL1(q, q_star, alpha_);
}

double CostModel::WhyNotMoveCost(const Point& c, const Point& c_star) const {
  return normalizer_.NormalizedWeightedL1(c, c_star, beta_);
}

void SortCandidates(std::vector<Candidate>* candidates) {
  std::sort(candidates->begin(), candidates->end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.point < b.point;
            });
}

}  // namespace wnrs
