#ifndef WNRS_CORE_ENGINE_H_
#define WNRS_CORE_ENGINE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/annotated_mutex.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/cost.h"
#include "core/explain.h"
#include "core/mqp.h"
#include "core/mwp.h"
#include "core/mwq.h"
#include "core/safe_region.h"
#include "data/dataset.h"
#include "index/rtree.h"

namespace wnrs {

/// How WhyNotEngine::Open reads a saved bundle (see DESIGN.md §13).
struct EngineStorageOptions {
  /// Buffer-pool frames in front of the page files holding the dynamic
  /// R*-trees; hits and misses surface as storage.cache_hits /
  /// storage.cache_misses.
  size_t buffer_pool_pages = 256;
  /// mmap the packed slab (zero-copy cold start) instead of reading it
  /// into owned memory. Query-identical either way.
  bool mmap_packed = true;
  /// Verify the per-section CRC-32s of the packed slab on open (one
  /// sequential sweep); the structural validator runs regardless.
  bool verify_checksums = true;
};

/// Engine configuration.
struct WhyNotEngineOptions {
  /// R*-tree knobs (paper default: 1536-byte pages).
  RTreeOptions rtree;
  /// Sort dimension of the staircase constructions.
  size_t sort_dim = 0;
  /// Weight vectors alpha (query) / beta (why-not). Empty = equal weights.
  std::vector<double> alpha;
  std::vector<double> beta;
  /// Cap on safe-region rectangles (see SafeRegionOptions).
  size_t max_safe_region_rectangles = 8192;
  /// Use the branch-and-bound window-skyline frontier for MWP/MQP
  /// (identical candidates, runtime O(|F|) instead of O(|Λ|); the
  /// reported culprit list then holds only the frontier). Explain()
  /// always materializes the full culprit set regardless.
  bool fast_frontier = true;
  /// Nudge applied under Semantics::kStrict to turn closed-boundary
  /// answers into strict reverse-skyline members, as a fraction of each
  /// dimension's data range.
  double epsilon_fraction = 1e-9;
  /// Thread count for the engine's parallel loops (batch why-not
  /// answering, approximated-DSL precomputation, reverse-skyline
  /// verification). 0 = hardware concurrency; 1 = bit-exact serial
  /// execution with no worker threads. Every thread count produces
  /// identical results; only the scheduling differs.
  size_t num_threads = 0;
  /// Serve the query hot loops (BBS, BBRS, window probes, range queries)
  /// from a packed, arena-backed image of the R*-tree (PackedRTree)
  /// frozen once per mutation at snapshot-publish time, instead of
  /// pointer-chasing the dynamic tree. Results, node-read counts, and
  /// traversal order are bit-identical either way; the packed path is
  /// simply faster. Freeze cost is surfaced in the packed.freezes /
  /// packed.freeze_ns metrics. Disable to A/B the two paths.
  bool use_packed_read_path = true;
  /// Re-verify every answer against ground truth before returning it:
  /// tree structure after each mutation (index/validate.h), safe-region
  /// soundness by sampled window probes, and MWP/MQP/MWQ membership of
  /// every returned candidate (core/validate.h). A violation aborts via
  /// WNRS_CHECK with the violated invariant named — fail closed, never
  /// serve a wrong answer. Expensive (each answer is re-proved with
  /// independent probes over the dynamic tree); meant for tests, fuzzing
  /// and canary replicas, not the serving fleet.
  bool paranoid_checks = false;
  /// Persistence knobs used by WhyNotEngine::Open.
  EngineStorageOptions storage;
};

/// Answer semantics for the modification algorithms (MWP/MQP/MWQ).
///
/// The paper's algorithms place answers on the *closed boundary* of the
/// feasible region ("pay at least 3K more"); a boundary answer ties with
/// a culprit product and is therefore not a strict reverse-skyline
/// member. kStrict post-processes every candidate with the epsilon nudge
/// (WhyNotEngineOptions::epsilon_fraction) toward the interior and
/// recomputes its cost, so the returned locations pass a real strict
/// membership probe. kBoundary (the default) returns the paper's
/// boundary answers unchanged — the historical behavior, previously only
/// reachable by manually chaining NudgeToStrictMember (now deprecated as
/// a public workflow; use this parameter instead).
enum class Semantics { kBoundary, kStrict };

namespace internal {
/// Immutable engine state (datasets, R*-tree, cost model, approx-DSL
/// store) plus its concurrency-safe derived caches. Defined in engine.cc.
struct EngineCore;
}  // namespace internal

/// An immutable, concurrency-safe view of one engine state — the
/// "session" handle of the serving API. Snapshots are cheap to copy
/// (one shared_ptr), safe to use from any number of threads at once, and
/// unaffected by later engine mutations: a snapshot taken before
/// AddProduct keeps answering against the old market until it is
/// dropped. All query results are bit-identical to the serial engine
/// facade.
///
/// Obtain one with WhyNotEngine::Snapshot(); it may outlive the engine.
class EngineSnapshot {
 public:
  EngineSnapshot(const EngineSnapshot&) = default;
  EngineSnapshot& operator=(const EngineSnapshot&) = default;
  EngineSnapshot(EngineSnapshot&&) noexcept = default;
  EngineSnapshot& operator=(EngineSnapshot&&) noexcept = default;

  const Dataset& products() const;
  const Dataset& customers() const;
  bool shared_relation() const;
  const CostModel& cost_model() const;
  const RStarTree& product_tree() const;
  const Rectangle& universe() const;
  bool HasApproxDsls() const;
  size_t approx_k() const;
  bool IsLiveProduct(size_t id) const;

  /// RSL(q) as customer indices (ascending); memoized per query point.
  std::vector<size_t> ReverseSkyline(const Point& q) const;
  bool IsReverseSkylineMember(size_t c, const Point& q) const;
  std::vector<size_t> CustomersInRange(const Rectangle& window) const;
  WhyNotExplanation Explain(size_t c, const Point& q) const;
  MwpResult ModifyWhyNot(size_t c, const Point& q,
                         Semantics semantics = Semantics::kBoundary) const;
  MqpResult ModifyQuery(size_t c, const Point& q,
                        Semantics semantics = Semantics::kBoundary) const;

  /// SR(q), cached per query point within this snapshot's generation.
  /// The shared_ptr keeps the result alive independently of cache
  /// eviction, so it is safe to hold across further queries.
  std::shared_ptr<const SafeRegionResult> SafeRegion(const Point& q) const;
  std::shared_ptr<const SafeRegionResult> ApproxSafeRegion(
      const Point& q) const;
  SafeRegionResult ConstrainedSafeRegion(const Point& q,
                                         const Rectangle& limits) const;

  MwqResult ModifyBoth(size_t c, const Point& q,
                       Semantics semantics = Semantics::kBoundary) const;
  MwqResult ModifyBothApprox(size_t c, const Point& q,
                             Semantics semantics = Semantics::kBoundary) const;
  MwqResult ModifyBothConstrained(
      size_t c, const Point& q, const Rectangle& limits,
      Semantics semantics = Semantics::kBoundary) const;
  std::vector<size_t> LostCustomers(const Point& q, const Point& q_star) const;
  std::vector<MwqResult> ModifyBothBatch(
      const std::vector<size_t>& whos, const Point& q, bool use_approx = false,
      Semantics semantics = Semantics::kBoundary) const;
  double MqpEvaluationCost(const Point& q, const Point& q_star) const;
  std::optional<Point> NudgeToStrictMember(const Point& c_star, const Point& q,
                                           size_t customer_index) const;

  /// Low-level shard probes (src/shard): each dispatches packed-vs-dynamic
  /// exactly like the corresponding full-query call site, and each returns
  /// a canonical ordering (ascending ids for window hits and frontiers),
  /// so a sharded union of per-shard results merges bit-identically to a
  /// single-index run. `exclude` is the raw tree id to skip (the sharded
  /// caller maps the customer's own tuple to its shard-local id).
  bool ProbeWindowEmpty(const Point& c, const Point& q,
                        std::optional<RStarTree::Id> exclude) const;
  std::vector<RStarTree::Id> ProbeWindowHits(
      const Point& c, const Point& q,
      std::optional<RStarTree::Id> exclude) const;
  std::vector<RStarTree::Id> ProbeWindowFrontier(
      const Point& c, const Point& q, const Point& origin,
      std::optional<RStarTree::Id> exclude) const;
  std::vector<RStarTree::Id> ProbeDynamicSkyline(
      const Point& c, std::optional<RStarTree::Id> exclude) const;
  /// BBRS candidate generation only — the global (quadrant-aware) skyline
  /// of this snapshot's products w.r.t. `q`, without the per-candidate
  /// window verification. A sharded coordinator merges these across
  /// shards (the global skyline of a union is the dominance filter of the
  /// per-part global skylines) and verifies each survivor exactly once.
  std::vector<RStarTree::Id> ProbeGlobalSkylineCandidates(
      const Point& q, std::optional<RStarTree::Id> exclude) const;

  /// Validating (non-aborting) variants: every bad input that would trip
  /// a WNRS_CHECK in the methods above — out-of-range or removed
  /// customer index, dimension mismatch, non-finite coordinates, missing
  /// approx-DSL store — comes back as a non-OK Status instead, so a
  /// serving layer never crashes the process on a bad request.
  Result<std::vector<size_t>> TryReverseSkyline(const Point& q) const;
  Result<WhyNotExplanation> TryExplain(size_t c, const Point& q) const;
  Result<MwpResult> TryModifyWhyNot(
      size_t c, const Point& q,
      Semantics semantics = Semantics::kBoundary) const;
  Result<MqpResult> TryModifyQuery(
      size_t c, const Point& q,
      Semantics semantics = Semantics::kBoundary) const;
  Result<std::shared_ptr<const SafeRegionResult>> TrySafeRegion(
      const Point& q) const;
  Result<std::shared_ptr<const SafeRegionResult>> TryApproxSafeRegion(
      const Point& q) const;
  Result<MwqResult> TryModifyBoth(
      size_t c, const Point& q,
      Semantics semantics = Semantics::kBoundary) const;
  Result<MwqResult> TryModifyBothApprox(
      size_t c, const Point& q,
      Semantics semantics = Semantics::kBoundary) const;
  Result<std::vector<MwqResult>> TryModifyBothBatch(
      const std::vector<size_t>& whos, const Point& q, bool use_approx = false,
      Semantics semantics = Semantics::kBoundary) const;

 private:
  friend class WhyNotEngine;
  explicit EngineSnapshot(std::shared_ptr<const internal::EngineCore> core)
      : core_(std::move(core)) {}

  std::shared_ptr<const internal::EngineCore> core_;
};

/// Facade over the full why-not pipeline of the paper: reverse skylines
/// (BBRS), explanations, MWP (Alg. 1), MQP (Alg. 2), exact and
/// approximated safe regions (Alg. 3 + Section VI-B.1), and MWQ (Alg. 4).
///
/// The engine owns the product/customer datasets and their R*-tree, the
/// min-max cost model, the per-query safe-region and reverse-skyline
/// caches (the paper: "we do not need to recompute it to answer another
/// why-not question for the same query point"), and the optional offline
/// store of approximated dynamic skylines.
///
/// Customers are addressed by index into customers().points; in the
/// shared-relation mode (one relation is both P and C, as in every
/// experiment of the paper) customer index == product id and a customer's
/// own tuple is excluded from its window queries.
///
/// Threading: the whole read path (ReverseSkyline, Explain, ModifyWhyNot,
/// ModifyQuery, SafeRegion, ModifyBoth*, ...) is safe for concurrent
/// external callers — the engine state is an immutable core published
/// through an atomic snapshot pointer and every derived cache is
/// internally synchronized. Mutations (AddProduct, RemoveProduct,
/// PrecomputeApproxDsls, LoadApproxDsls) are serialized against each
/// other and publish a *new* core copy-on-write, so in-flight readers
/// finish against the state they started with and never observe a
/// half-applied change. For mutation-concurrent reading, prefer holding
/// an explicit EngineSnapshot (Snapshot()): references returned by the
/// facade accessors (products(), SafeRegion(), ...) follow the core that
/// was current at call time and may dangle once a later mutation retires
/// it while no snapshot pins it. The engine additionally parallelizes its
/// own hot loops internally on a ThreadPool sized by
/// WhyNotEngineOptions::num_threads, with results identical to the
/// serial path.
class WhyNotEngine {
 public:
  /// The session handle of the concurrent API; see EngineSnapshot.
  using Session = EngineSnapshot;

  /// Bichromatic constructor: separate products and customers.
  WhyNotEngine(Dataset products, Dataset customers,
               WhyNotEngineOptions options = {});

  /// Shared-relation constructor: one dataset plays both roles.
  explicit WhyNotEngine(Dataset data, WhyNotEngineOptions options = {});

  /// Persists the full engine state to directory `dir` (created if
  /// missing): datasets, tombstones, and universe as a CRC'd binary blob;
  /// the dynamic R*-trees as page files (one node per CRC'd page); and,
  /// when the packed read path is active, the frozen slab in its
  /// mmap-able on-disk form. An engine reopened from the bundle answers
  /// every query bit-identically to this one. The approximated-DSL store
  /// is not part of the bundle — persist it with SaveApproxDsls alongside
  /// and reload it after Open.
  [[nodiscard]] Status Save(const std::string& dir) const;

  /// Reconstructs an engine from a Save directory. `options` plays the
  /// same role as in the constructors (and its `storage` member selects
  /// buffer-pool size and mmap-vs-buffered slab open); pass the options
  /// the original engine was built with to reproduce its answers
  /// bit-for-bit. The index structure itself comes from the bundle, not
  /// from a re-bulk-load — node layout, fan-out, and traversal order are
  /// the saved ones. If the bundle has no packed slab but
  /// options.use_packed_read_path is set, the slab is re-frozen from the
  /// loaded dynamic tree.
  [[nodiscard]] static Result<std::unique_ptr<WhyNotEngine>> Open(
      const std::string& dir, WhyNotEngineOptions options = {});

  WhyNotEngine(const WhyNotEngine&) = delete;
  WhyNotEngine& operator=(const WhyNotEngine&) = delete;

 private:
  /// Passkey for the restore constructor below: only Open (which can
  /// name the private type) can call it, but make_unique still can too.
  struct RestoreBadge {};

 public:
  /// Open's restore path: adopts an already-built core. Not callable
  /// outside the class (RestoreBadge is private); use Open.
  WhyNotEngine(RestoreBadge, std::shared_ptr<ThreadPool> pool,
               std::shared_ptr<const internal::EngineCore> core);

  /// The current immutable state as a shareable session object. O(1);
  /// safe to call concurrently with queries and mutations.
  EngineSnapshot Snapshot() const { return EngineSnapshot(CurrentCore()); }

  const Dataset& products() const;
  const Dataset& customers() const;
  bool shared_relation() const;
  const CostModel& cost_model() const;
  const RStarTree& product_tree() const;
  /// Universe rectangle: data bounds (products ∪ customers).
  const Rectangle& universe() const;

  /// RSL(q) as customer indices (ascending). Uses BBRS in shared-relation
  /// mode and the bichromatic pruned traversal otherwise.
  std::vector<size_t> ReverseSkyline(const Point& q) const;

  /// True iff customer `c` is in RSL(q) (single window probe).
  bool IsReverseSkylineMember(size_t c, const Point& q) const;

  /// Customers whose preference lies inside `window` (index range query;
  /// in shared-relation mode removed products are excluded). Ascending.
  std::vector<size_t> CustomersInRange(const Rectangle& window) const;

  /// Aspect 1: the culprit products and binding frontier.
  WhyNotExplanation Explain(size_t c, const Point& q) const;

  /// Algorithm 1. Boundary semantics by default; pass Semantics::kStrict
  /// for candidates nudged into strict reverse-skyline membership.
  MwpResult ModifyWhyNot(size_t c, const Point& q,
                         Semantics semantics = Semantics::kBoundary) const;

  /// Algorithm 2.
  MqpResult ModifyQuery(size_t c, const Point& q,
                        Semantics semantics = Semantics::kBoundary) const;

  /// Exact SR(q) (Algorithm 3); cached per query point, so repeated
  /// why-not questions against the same q reuse it. RSL(q) is computed
  /// internally. The reference stays valid until the calling thread's
  /// next SafeRegion/ApproxSafeRegion call or an engine mutation,
  /// whichever comes first; hold a Snapshot() and use its shared_ptr
  /// overload to pin results for longer.
  const SafeRegionResult& SafeRegion(const Point& q) const;

  /// Approximated SR(q) from the offline store; PrecomputeApproxDsls must
  /// have run. Also cached per query point (same lifetime contract).
  const SafeRegionResult& ApproxSafeRegion(const Point& q) const;

  /// Algorithm 4 with the exact safe region.
  MwqResult ModifyBoth(size_t c, const Point& q,
                       Semantics semantics = Semantics::kBoundary) const;

  /// Algorithm 4 with the approximated safe region (Approx-MWQ).
  MwqResult ModifyBothApprox(size_t c, const Point& q,
                             Semantics semantics = Semantics::kBoundary) const;

  /// The paper's Section V-B remark: the safe region "can be truncated
  /// ... to a smaller one by limiting certain product feature". Returns
  /// SR(q) ∩ limits — still safe (a subset loses no customers). q itself
  /// is re-added as a degenerate rectangle if the limits exclude it, so
  /// Algorithm 4 always has the zero-move fallback.
  SafeRegionResult ConstrainedSafeRegion(const Point& q,
                                         const Rectangle& limits) const;

  /// Algorithm 4 confined to `limits` (e.g., "the price may only change
  /// within [X, Y]").
  MwqResult ModifyBothConstrained(
      size_t c, const Point& q, const Rectangle& limits,
      Semantics semantics = Semantics::kBoundary) const;

  /// The flip side of the same remark: moving q outside SR(q) ("expanding"
  /// the region) costs existing customers. Returns the members of RSL(q)
  /// that would be lost if q moved to q_star (empty inside the safe
  /// region).
  std::vector<size_t> LostCustomers(const Point& q,
                                    const Point& q_star) const;

  /// Answers a batch of why-not questions against one query point,
  /// computing the (exact or approximated) safe region once — the reuse
  /// the paper highlights ("we do not need to recompute it to answer
  /// another why-not question for the same query point").
  std::vector<MwqResult> ModifyBothBatch(
      const std::vector<size_t>& whos, const Point& q, bool use_approx = false,
      Semantics semantics = Semantics::kBoundary) const;

  /// Validating variants of the read path; see EngineSnapshot. These
  /// replace the aborting forms for any caller that cannot trust its
  /// inputs (the serve layer uses them exclusively); the WNRS_CHECK-ing
  /// forms above remain for source compatibility but are deprecated for
  /// untrusted input.
  Result<std::vector<size_t>> TryReverseSkyline(const Point& q) const;
  Result<WhyNotExplanation> TryExplain(size_t c, const Point& q) const;
  Result<MwpResult> TryModifyWhyNot(
      size_t c, const Point& q,
      Semantics semantics = Semantics::kBoundary) const;
  Result<MqpResult> TryModifyQuery(
      size_t c, const Point& q,
      Semantics semantics = Semantics::kBoundary) const;
  Result<std::shared_ptr<const SafeRegionResult>> TrySafeRegion(
      const Point& q) const;
  Result<std::shared_ptr<const SafeRegionResult>> TryApproxSafeRegion(
      const Point& q) const;
  Result<MwqResult> TryModifyBoth(
      size_t c, const Point& q,
      Semantics semantics = Semantics::kBoundary) const;
  Result<MwqResult> TryModifyBothApprox(
      size_t c, const Point& q,
      Semantics semantics = Semantics::kBoundary) const;
  Result<std::vector<MwqResult>> TryModifyBothBatch(
      const std::vector<size_t>& whos, const Point& q, bool use_approx = false,
      Semantics semantics = Semantics::kBoundary) const;

  /// Offline pass of Section VI-B.1: computes and stores the approximated
  /// DSL (transformed space, sampled with parameter k) of every customer.
  /// A mutation: publishes a new snapshot with the store attached.
  void PrecomputeApproxDsls(size_t k);
  bool HasApproxDsls() const;
  size_t approx_k() const;

  /// Persists the precomputed store (the paper precomputes it "off-line");
  /// a saved store can be reloaded into an engine over the same datasets,
  /// skipping the PrecomputeApproxDsls pass on startup.
  Status SaveApproxDsls(const std::string& path) const;

  /// Loads a store written by SaveApproxDsls. Fails if the entry count
  /// does not match this engine's customer count.
  Status LoadApproxDsls(const std::string& path);

  /// Appends a product to the market (copy-on-write R*-tree insert and
  /// snapshot publish). Drops the safe-region caches and the
  /// approximated-DSL store with the old snapshot (both depend on the
  /// product set). Returns the new product's id. In shared-relation mode
  /// the tuple is simultaneously a new customer preference.
  /// [[nodiscard]]: dropping the id orphans the product — there is no
  /// other way to learn it for a later RemoveProduct.
  [[nodiscard]] size_t AddProduct(const Point& p);

  /// Validating variant: rejects dimension mismatches and non-finite
  /// coordinates instead of aborting.
  Result<size_t> TryAddProduct(const Point& p);

  /// Removes product `id` from the market (copy-on-write R*-tree delete;
  /// the slot in products() is tombstoned, so existing ids stay stable).
  /// Returns false if the id is unknown or already removed. In
  /// shared-relation mode the corresponding customer disappears with it.
  /// [[nodiscard]]: the bool is the only failure signal (false = no such
  /// live product, nothing was removed).
  [[nodiscard]] bool RemoveProduct(size_t id);

  /// Status-returning variant of RemoveProduct (NotFound on unknown or
  /// already-removed ids).
  Status TryRemoveProduct(size_t id);

  /// True iff the product id is live (not tombstoned).
  bool IsLiveProduct(size_t id) const;

  /// The paper's evaluation cost for MQP (Section VI-A): the alpha-cost of
  /// exiting the safe region plus the beta-cost of winning back every
  /// reverse-skyline customer lost by moving q to q*.
  double MqpEvaluationCost(const Point& q, const Point& q_star) const;

  /// Nudges a why-not answer off the closed boundary: moves `c_star`
  /// epsilon toward q per dimension and verifies strict membership.
  /// Returns the nudged point, or nullopt if even the nudged point is not
  /// a reverse-skyline member (possible when Algorithm 1's 2-D staircase
  /// heuristic is applied to adversarial inputs). Deprecated as a manual
  /// workflow: pass Semantics::kStrict to the Modify* methods instead.
  std::optional<Point> NudgeToStrictMember(const Point& c_star,
                                           const Point& q,
                                           size_t customer_index) const;

  /// Cumulative work counters over every outermost public call since
  /// construction (or ResetStats): R*-tree node reads, dominance tests,
  /// cache hits, and the rest of QueryStats. Derived from registry
  /// snapshots around each call; with several external threads querying
  /// concurrently the first caller in attributes the overlapping window,
  /// so treat concurrent-mode values as aggregate work, not an exact
  /// per-call ledger.
  QueryStats stats() const;

  /// Work done by the most recent outermost public call alone.
  QueryStats last_query_stats() const;

  /// Zeroes stats() and last_query_stats(). Does not touch the global
  /// MetricsRegistry.
  void ResetStats() const;

 private:
  /// RAII registry-snapshot delta around the outermost public call;
  /// nested or concurrently-overlapping calls see a non-zero depth and
  /// record nothing.
  class StatsScope;

  std::shared_ptr<const internal::EngineCore> CurrentCore() const;
  void PublishCore(std::shared_ptr<const internal::EngineCore> core);

  /// Pool behind all parallel loops; always non-null and shared into
  /// every core so snapshots can outlive the engine. With
  /// options_.num_threads == 1 it owns no workers and runs serially.
  std::shared_ptr<ThreadPool> pool_;

  /// The published snapshot; swapped wholesale by mutations. Exclusive
  /// for the COW republish, shared for the snapshot read path.
  mutable SharedMutex core_mu_;
  std::shared_ptr<const internal::EngineCore> core_ WNRS_GUARDED_BY(core_mu_);

  /// Serializes mutations (copy-on-write builders) against each other.
  /// Ordered strictly before core_mu_ (PublishCore runs with it held);
  /// never acquire mutation_mu_ with core_mu_ held.
  Mutex mutation_mu_;

  // Per-call statistics. `stats_depth_` is shared across threads so
  // overlapping calls don't double-count registry deltas.
  mutable std::atomic<int> stats_depth_{0};
  mutable Mutex stats_mu_;
  mutable QueryStats last_query_stats_ WNRS_GUARDED_BY(stats_mu_);
  mutable QueryStats cum_stats_ WNRS_GUARDED_BY(stats_mu_);
};

}  // namespace wnrs

#endif  // WNRS_CORE_ENGINE_H_
