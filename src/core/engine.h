#ifndef WNRS_CORE_ENGINE_H_
#define WNRS_CORE_ENGINE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/cost.h"
#include "core/explain.h"
#include "core/mqp.h"
#include "core/mwp.h"
#include "core/mwq.h"
#include "core/safe_region.h"
#include "data/dataset.h"
#include "index/rtree.h"

namespace wnrs {

/// Engine configuration.
struct WhyNotEngineOptions {
  /// R*-tree knobs (paper default: 1536-byte pages).
  RTreeOptions rtree;
  /// Sort dimension of the staircase constructions.
  size_t sort_dim = 0;
  /// Weight vectors alpha (query) / beta (why-not). Empty = equal weights.
  std::vector<double> alpha;
  std::vector<double> beta;
  /// Cap on safe-region rectangles (see SafeRegionOptions).
  size_t max_safe_region_rectangles = 8192;
  /// Use the branch-and-bound window-skyline frontier for MWP/MQP
  /// (identical candidates, runtime O(|F|) instead of O(|Λ|); the
  /// reported culprit list then holds only the frontier). Explain()
  /// always materializes the full culprit set regardless.
  bool fast_frontier = true;
  /// Nudge applied by the *Strict variants to turn closed-boundary
  /// answers into strict reverse-skyline members, as a fraction of each
  /// dimension's data range.
  double epsilon_fraction = 1e-9;
  /// Thread count for the engine's parallel loops (batch why-not
  /// answering, approximated-DSL precomputation, reverse-skyline
  /// verification). 0 = hardware concurrency; 1 = bit-exact serial
  /// execution with no worker threads. Every thread count produces
  /// identical results; only the scheduling differs.
  size_t num_threads = 0;
};

/// Facade over the full why-not pipeline of the paper: reverse skylines
/// (BBRS), explanations, MWP (Alg. 1), MQP (Alg. 2), exact and
/// approximated safe regions (Alg. 3 + Section VI-B.1), and MWQ (Alg. 4).
///
/// The engine owns the product/customer datasets and their R*-tree, the
/// min-max cost model, the per-query safe-region cache (the paper:
/// "we do not need to recompute it to answer another why-not question for
/// the same query point"), and the optional offline store of approximated
/// dynamic skylines.
///
/// Customers are addressed by index into customers().points; in the
/// shared-relation mode (one relation is both P and C, as in every
/// experiment of the paper) customer index == product id and a customer's
/// own tuple is excluded from its window queries.
///
/// Threading: the engine parallelizes its own hot loops internally on a
/// ThreadPool sized by WhyNotEngineOptions::num_threads, with results
/// identical to the serial path. The public API itself follows the
/// single-caller convention of the caches: do not invoke methods of one
/// engine from multiple external threads concurrently.
class WhyNotEngine {
 public:
  /// Bichromatic constructor: separate products and customers.
  WhyNotEngine(Dataset products, Dataset customers,
               WhyNotEngineOptions options = {});

  /// Shared-relation constructor: one dataset plays both roles.
  explicit WhyNotEngine(Dataset data, WhyNotEngineOptions options = {});

  WhyNotEngine(const WhyNotEngine&) = delete;
  WhyNotEngine& operator=(const WhyNotEngine&) = delete;

  const Dataset& products() const { return products_; }
  const Dataset& customers() const {
    return shared_relation_ ? products_ : customers_;
  }
  bool shared_relation() const { return shared_relation_; }
  const CostModel& cost_model() const { return cost_model_; }
  const RStarTree& product_tree() const { return tree_; }
  /// Universe rectangle: data bounds (products ∪ customers).
  const Rectangle& universe() const { return universe_; }

  /// RSL(q) as customer indices (ascending). Uses BBRS in shared-relation
  /// mode and the bichromatic pruned traversal otherwise.
  std::vector<size_t> ReverseSkyline(const Point& q) const;

  /// True iff customer `c` is in RSL(q) (single window probe).
  bool IsReverseSkylineMember(size_t c, const Point& q) const;

  /// Customers whose preference lies inside `window` (index range query;
  /// in shared-relation mode removed products are excluded). Ascending.
  std::vector<size_t> CustomersInRange(const Rectangle& window) const;

  /// Aspect 1: the culprit products and binding frontier.
  WhyNotExplanation Explain(size_t c, const Point& q) const;

  /// Algorithm 1. Boundary-semantics candidates; see NudgeToStrictMember
  /// for converting one into a strict reverse-skyline member.
  MwpResult ModifyWhyNot(size_t c, const Point& q) const;

  /// Algorithm 2.
  MqpResult ModifyQuery(size_t c, const Point& q) const;

  /// Exact SR(q) (Algorithm 3); cached per query point, so repeated
  /// why-not questions against the same q reuse it. RSL(q) is computed
  /// internally.
  const SafeRegionResult& SafeRegion(const Point& q) const;

  /// Approximated SR(q) from the offline store; PrecomputeApproxDsls must
  /// have run. Also cached per query point.
  const SafeRegionResult& ApproxSafeRegion(const Point& q) const;

  /// Algorithm 4 with the exact safe region.
  MwqResult ModifyBoth(size_t c, const Point& q) const;

  /// Algorithm 4 with the approximated safe region (Approx-MWQ).
  MwqResult ModifyBothApprox(size_t c, const Point& q) const;

  /// The paper's Section V-B remark: the safe region "can be truncated
  /// ... to a smaller one by limiting certain product feature". Returns
  /// SR(q) ∩ limits — still safe (a subset loses no customers). q itself
  /// is re-added as a degenerate rectangle if the limits exclude it, so
  /// Algorithm 4 always has the zero-move fallback.
  SafeRegionResult ConstrainedSafeRegion(const Point& q,
                                         const Rectangle& limits) const;

  /// Algorithm 4 confined to `limits` (e.g., "the price may only change
  /// within [X, Y]").
  MwqResult ModifyBothConstrained(size_t c, const Point& q,
                                  const Rectangle& limits) const;

  /// The flip side of the same remark: moving q outside SR(q) ("expanding"
  /// the region) costs existing customers. Returns the members of RSL(q)
  /// that would be lost if q moved to q_star (empty inside the safe
  /// region).
  std::vector<size_t> LostCustomers(const Point& q,
                                    const Point& q_star) const;

  /// Answers a batch of why-not questions against one query point,
  /// computing the (exact or approximated) safe region once — the reuse
  /// the paper highlights ("we do not need to recompute it to answer
  /// another why-not question for the same query point").
  std::vector<MwqResult> ModifyBothBatch(const std::vector<size_t>& whos,
                                         const Point& q,
                                         bool use_approx = false) const;

  /// Offline pass of Section VI-B.1: computes and stores the approximated
  /// DSL (transformed space, sampled with parameter k) of every customer.
  void PrecomputeApproxDsls(size_t k);
  bool HasApproxDsls() const { return !approx_dsls_.empty(); }
  size_t approx_k() const { return approx_k_; }

  /// Persists the precomputed store (the paper precomputes it "off-line");
  /// a saved store can be reloaded into an engine over the same datasets,
  /// skipping the PrecomputeApproxDsls pass on startup.
  Status SaveApproxDsls(const std::string& path) const;

  /// Loads a store written by SaveApproxDsls. Fails if the entry count
  /// does not match this engine's customer count.
  Status LoadApproxDsls(const std::string& path);

  /// Appends a product to the market (R*-tree insert). Invalidates the
  /// safe-region caches and the approximated-DSL store (both depend on
  /// the product set). Returns the new product's id. In shared-relation
  /// mode the tuple is simultaneously a new customer preference.
  size_t AddProduct(const Point& p);

  /// Removes product `id` from the market (R*-tree delete; the slot in
  /// products() is tombstoned, so existing ids stay stable). Returns
  /// false if the id is unknown or already removed. In shared-relation
  /// mode the corresponding customer disappears with it.
  bool RemoveProduct(size_t id);

  /// True iff the product id is live (not tombstoned).
  bool IsLiveProduct(size_t id) const;

  /// The paper's evaluation cost for MQP (Section VI-A): the alpha-cost of
  /// exiting the safe region plus the beta-cost of winning back every
  /// reverse-skyline customer lost by moving q to q*.
  double MqpEvaluationCost(const Point& q, const Point& q_star) const;

  /// Nudges a why-not answer off the closed boundary: moves `c_star`
  /// epsilon toward q per dimension and verifies strict membership.
  /// Returns the nudged point, or nullopt if even the nudged point is not
  /// a reverse-skyline member (possible when Algorithm 1's 2-D staircase
  /// heuristic is applied to adversarial inputs).
  std::optional<Point> NudgeToStrictMember(const Point& c_star,
                                           const Point& q,
                                           size_t customer_index) const;

  /// Cumulative work counters over every outermost public call since
  /// construction (or ResetStats): R*-tree node reads, dominance tests,
  /// cache hits, and the rest of QueryStats. Derived from registry
  /// snapshots around each call, so with several engines doing work
  /// concurrently the attribution follows the single-caller convention.
  QueryStats stats() const { return cum_stats_; }

  /// Work done by the most recent outermost public call alone.
  const QueryStats& last_query_stats() const { return last_query_stats_; }

  /// Zeroes stats() and last_query_stats(). Does not touch the global
  /// MetricsRegistry.
  void ResetStats() const {
    cum_stats_ = QueryStats();
    last_query_stats_ = QueryStats();
  }

 private:
  /// RAII registry-snapshot delta around the outermost public call;
  /// nested calls (ModifyBoth -> SafeRegion, batch workers) see a
  /// non-zero depth and record nothing.
  class StatsScope;

  std::optional<RStarTree::Id> ExcludeFor(size_t customer_index) const;
  const Point& CustomerPoint(size_t c) const;
  /// Builds the q*-validator that probes every member of RSL(q).
  KeepsMembersFn MakeKeepsMembersFn(const Point& q) const;

  /// Uncached reverse-skyline computation behind ReverseSkyline().
  std::vector<size_t> ComputeReverseSkyline(const Point& q) const;

  void InvalidateDerivedState();

  WhyNotEngineOptions options_;
  /// Pool behind all parallel loops; always non-null. With
  /// options_.num_threads == 1 it owns no workers and runs serially.
  std::unique_ptr<ThreadPool> pool_;
  bool shared_relation_ = false;
  std::vector<bool> removed_;  // Tombstones for RemoveProduct.
  Dataset products_;
  Dataset customers_;  // Unused in shared-relation mode.
  RStarTree tree_;
  std::unique_ptr<RStarTree> customer_tree_;  // Bichromatic mode only.
  Rectangle universe_;
  CostModel cost_model_;
  std::vector<std::vector<Point>> approx_dsls_;
  size_t approx_k_ = 0;

  // Safe-region caches keyed by query point.
  mutable std::optional<Point> cached_sr_query_;
  mutable SafeRegionResult cached_sr_;
  mutable std::optional<Point> cached_approx_sr_query_;
  mutable SafeRegionResult cached_approx_sr_;

  // Query-keyed reverse-skyline memo: RSL(q) is computed once per
  // distinct q and shared by SafeRegion, ApproxSafeRegion,
  // MqpEvaluationCost, LostCustomers, and MakeKeepsMembersFn.
  // Invalidated by InvalidateDerivedState(). Mutex-guarded so cache
  // probes from the parallel loops stay race-free.
  mutable std::mutex rsl_cache_mu_;
  mutable std::vector<std::pair<Point, std::vector<size_t>>> cached_rsl_;

  // Per-call statistics. `stats_depth_` is shared across threads so the
  // batch fan-out's worker-side calls don't re-record; the QueryStats
  // members are written only by the single outermost call.
  mutable std::atomic<int> stats_depth_{0};
  mutable QueryStats last_query_stats_;
  mutable QueryStats cum_stats_;
};

}  // namespace wnrs

#endif  // WNRS_CORE_ENGINE_H_
