#ifndef WNRS_CORE_EXPLAIN_H_
#define WNRS_CORE_EXPLAIN_H_

#include <optional>
#include <vector>

#include "index/rtree.h"

namespace wnrs {

/// The first aspect of a why-not answer (paper, Section III): the causes.
struct WhyNotExplanation {
  /// True iff the why-not point is already in RSL(q) — nothing to explain.
  bool already_member = false;
  /// The culprit set Λ = window_query(c_t, q): products the customer finds
  /// more interesting than q. Deleting them all would admit c_t (Lemma 1).
  std::vector<RStarTree::Id> culprits;
  /// The frontier F used by Algorithm 1: culprits not dynamically
  /// dominated by another culprit w.r.t. q (the binding constraints).
  std::vector<RStarTree::Id> frontier;
};

/// Explains why `c_t` is not in RSL(q) over the indexed products.
/// `exclude_id` skips the customer's own tuple in the shared-relation
/// setting. `products` maps tree ids to points (id = index).
WhyNotExplanation ExplainWhyNot(
    const RStarTree& tree, const std::vector<Point>& products,
    const Point& c_t, const Point& q,
    std::optional<RStarTree::Id> exclude_id = std::nullopt);

/// Index-free tail of ExplainWhyNot: takes the culprit set Λ already
/// materialized (any provider — a tree window query, or a sharded union
/// of per-shard window queries) and derives the frontier identically.
WhyNotExplanation ExplainWhyNotFromCulprits(
    const std::vector<Point>& products, std::vector<RStarTree::Id> culprits,
    const Point& q);

}  // namespace wnrs

#endif  // WNRS_CORE_EXPLAIN_H_
