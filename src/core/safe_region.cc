#include "core/safe_region.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "geometry/transform.h"
#include "skyline/bbs.h"
#include "skyline/ddr.h"

namespace wnrs {
namespace {

/// Caps `region` at `max_rectangles` constituents, keeping the largest.
bool TruncateRegion(RectRegion* region, size_t max_rectangles) {
  if (region->size() <= max_rectangles) return false;
  std::vector<Rectangle> rects = region->rects();
  std::sort(rects.begin(), rects.end(),
            [](const Rectangle& a, const Rectangle& b) {
              return a.Volume() > b.Volume();
            });
  rects.resize(max_rectangles);
  *region = RectRegion(std::move(rects));
  return true;
}

/// Shared intersection loop over per-customer anti-dominance regions.
template <typename RegionForCustomer>
SafeRegionResult IntersectRegions(const std::vector<size_t>& rsl,
                                  const Rectangle& universe,
                                  const SafeRegionOptions& options,
                                  const RegionForCustomer& region_for) {
  SafeRegionResult out;
  out.region.Add(universe);
  // Pairwise rectangle products accumulate heavy redundancy across
  // iterations; re-canonicalize once the representation grows past what
  // the paper-style overlapping form stays readable at.
  constexpr size_t kCanonicalizeThreshold = 64;
  for (size_t customer : rsl) {
    RectRegion ddr_bar = region_for(customer);
    ddr_bar.ClipTo(universe);
    out.region = out.region.Intersect(ddr_bar);
    ++out.customers_processed;
    if (out.region.size() > kCanonicalizeThreshold) {
      out.region.Canonicalize();
    }
    if (TruncateRegion(&out.region, options.max_rectangles)) {
      out.truncated = true;
    }
    if (out.region.empty()) break;
  }
  MetricAdd(CounterId::kSafeRegionsComputed);
  MetricAdd(CounterId::kSafeRegionRects, out.region.size());
  MetricRecord(HistogramId::kSafeRegionRectsPerQuery, out.region.size());
  return out;
}

}  // namespace

SafeRegionResult ComputeSafeRegion(const RStarTree& products_tree,
                                   const std::vector<Point>& products,
                                   const std::vector<Point>& customers,
                                   const std::vector<size_t>& rsl,
                                   const Point& q, const Rectangle& universe,
                                   bool shared_relation,
                                   const SafeRegionOptions& options) {
  return ComputeSafeRegionWithDsls(
      products, customers, rsl, q, universe,
      [&](size_t customer) {
        std::optional<RStarTree::Id> exclude;
        if (shared_relation) exclude = static_cast<RStarTree::Id>(customer);
        return BbsDynamicSkyline(products_tree, customers[customer], exclude);
      },
      options);
}

SafeRegionResult ComputeSafeRegionWithDsls(const std::vector<Point>& products,
                                           const std::vector<Point>& customers,
                                           const std::vector<size_t>& rsl,
                                           const Point& q,
                                           const Rectangle& universe,
                                           const DslProviderFn& dsl_for,
                                           const SafeRegionOptions& options) {
  WNRS_CHECK(q.dims() == universe.dims());
  return IntersectRegions(rsl, universe, options, [&](size_t customer) {
    WNRS_CHECK(customer < customers.size());
    const Point& c = customers[customer];
    const std::vector<RStarTree::Id> dsl = dsl_for(customer);
    std::vector<Point> dsl_t;
    dsl_t.reserve(dsl.size());
    for (RStarTree::Id id : dsl) {
      WNRS_CHECK(static_cast<size_t>(id) < products.size());
      dsl_t.push_back(
          ToDistanceSpace(products[static_cast<size_t>(id)], c));
    }
    return AntiDominanceRegion(c, std::move(dsl_t),
                               MaxExtents(c, universe), options.sort_dim);
  });
}

SafeRegionResult ComputeApproxSafeRegion(
    const std::vector<Point>& customers,
    const std::vector<std::vector<Point>>& approx_dsls,
    const std::vector<size_t>& rsl, const Point& q,
    const Rectangle& universe, const SafeRegionOptions& options) {
  WNRS_CHECK(q.dims() == universe.dims());
  return IntersectRegions(rsl, universe, options, [&](size_t customer) {
    WNRS_CHECK(customer < customers.size());
    WNRS_CHECK(customer < approx_dsls.size());
    const Point& c = customers[customer];
    return ApproxAntiDominanceRegion(c, approx_dsls[customer],
                                     MaxExtents(c, universe),
                                     options.sort_dim);
  });
}

}  // namespace wnrs
