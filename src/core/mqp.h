#ifndef WNRS_CORE_MQP_H_
#define WNRS_CORE_MQP_H_

#include <optional>
#include <vector>

#include "core/cost.h"
#include "index/rtree.h"

namespace wnrs {

/// Result of Algorithm 2 (Modify Query Point, no safe region).
struct MqpResult {
  /// True iff c_t was already in RSL(q); candidates then hold just q at
  /// cost 0.
  bool already_member = false;
  /// The culprit set Λ returned by the window query.
  std::vector<RStarTree::Id> culprits;
  /// Candidate new query locations q*, cost-ascending under the alpha
  /// weights alone (the paper's evaluation additionally charges lost
  /// reverse-skyline customers — see WhyNotEngine::MqpEvaluationCost).
  /// Candidates sit on c_t's dynamic-skyline staircase (boundary
  /// semantics; nudge by epsilon for strict membership).
  std::vector<Candidate> candidates;
};

/// Algorithm 2: moves the query point q onto the dynamic skyline of c_t
/// with minimum change, so that c_t enters RSL(q*). Ignores the safe
/// region, so existing reverse-skyline customers may be lost.
///
/// Steps: window query for Λ; F = Λ ∩ DSL(c_t) (pairwise dominance in
/// c_t's distance space); staircase candidates in the transformed space
/// with max-merge and q anchoring (Eqns. 5-6); candidates mapped back to
/// the original space on q's side of c_t per dimension.
MqpResult ModifyQueryPoint(
    const RStarTree& tree, const std::vector<Point>& products,
    const Point& c_t, const Point& q, const CostModel& cost_model,
    size_t sort_dim = 0,
    std::optional<RStarTree::Id> exclude_id = std::nullopt);

/// ModifyQueryPoint with F = Λ ∩ DSL(c_t) computed directly by a
/// branch-and-bound window-skyline traversal (WindowSkyline with origin
/// c_t) instead of materializing Λ. Candidates are identical; `culprits`
/// then holds only the frontier ids.
MqpResult ModifyQueryPointFast(
    const RStarTree& tree, const std::vector<Point>& products,
    const Point& c_t, const Point& q, const CostModel& cost_model,
    size_t sort_dim = 0,
    std::optional<RStarTree::Id> exclude_id = std::nullopt);

/// Index-free tail of ModifyQueryPoint: takes the culprit set Λ already
/// materialized (any provider — a tree window query, or a sharded union of
/// per-shard window queries) and runs the identical frontier extraction,
/// staircase generation and costing.
MqpResult ModifyQueryPointFromCulprits(
    const std::vector<Point>& products, std::vector<RStarTree::Id> culprits,
    const Point& c_t, const Point& q, const CostModel& cost_model,
    size_t sort_dim = 0);

/// Index-free tail of ModifyQueryPointFast: `frontier_ids` must be the
/// window skyline of (c_t, q) in c_t's distance space (what WindowSkyline
/// with origin c_t returns — or a dominance-filtered union of per-shard
/// window skylines).
MqpResult ModifyQueryPointFromFrontier(
    const std::vector<Point>& products,
    std::vector<RStarTree::Id> frontier_ids, const Point& c_t, const Point& q,
    const CostModel& cost_model, size_t sort_dim = 0);

}  // namespace wnrs

#endif  // WNRS_CORE_MQP_H_
