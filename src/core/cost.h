#ifndef WNRS_CORE_COST_H_
#define WNRS_CORE_COST_H_

#include <vector>

#include "data/dataset.h"
#include "geometry/point.h"

namespace wnrs {

/// The paper's cost model (Eqns. 9-11): weighted L1 distances over
/// min-max-normalized coordinates. `alpha` weighs query-point movement,
/// `beta` why-not-point movement; the experiments use equal weights with
/// sum 1 and alpha = beta.
class CostModel {
 public:
  CostModel() = default;

  /// `bounds` defines the min-max normalization (usually the dataset's
  /// bounding box). Weight vectors must have one entry per dimension.
  CostModel(const Rectangle& bounds, std::vector<double> alpha,
            std::vector<double> beta);

  /// Equal weights summing to 1 on both sides — the experimental default.
  static CostModel EqualWeightsFor(const Rectangle& bounds);

  /// cost(q, q*) = sum_i alpha_i * |q_i - q*_i| (normalized).
  double QueryMoveCost(const Point& q, const Point& q_star) const;

  /// cost(c_t, c_t*) = sum_i beta_i * |c_t_i - c_t*_i| (normalized).
  double WhyNotMoveCost(const Point& c, const Point& c_star) const;

  const MinMaxNormalizer& normalizer() const { return normalizer_; }
  const std::vector<double>& alpha() const { return alpha_; }
  const std::vector<double>& beta() const { return beta_; }

 private:
  MinMaxNormalizer normalizer_;
  std::vector<double> alpha_;
  std::vector<double> beta_;
};

/// A candidate answer: a new location plus its cost under the relevant
/// weight vector, as ranked by Algorithms 1, 2 and 4.
struct Candidate {
  Point point;
  double cost = 0.0;
};

/// Sorts candidates by cost ascending (ties broken lexicographically by
/// location for determinism).
void SortCandidates(std::vector<Candidate>* candidates);

}  // namespace wnrs

#endif  // WNRS_CORE_COST_H_
