#ifndef WNRS_CORE_PROSPECT_H_
#define WNRS_CORE_PROSPECT_H_

#include <limits>
#include <optional>
#include <vector>

#include "core/engine.h"

namespace wnrs {

/// Tuning for prospect ranking.
struct ProspectOptions {
  /// How many prospects to return (cheapest first).
  size_t max_prospects = 10;
  /// Only consider customers whose preference lies within this L1
  /// distance of q in raw coordinates (infinity = everyone). The filter
  /// runs as an index range query, so tight radii are cheap.
  double max_preference_distance =
      std::numeric_limits<double>::infinity();
  /// Score with the approximated safe region (requires
  /// PrecomputeApproxDsls) instead of the exact one.
  bool use_approx = false;
};

/// One ranked prospect.
struct Prospect {
  /// Customer index.
  size_t customer = 0;
  /// Cheapest win cost (Algorithm 4's best_cost under the beta weights).
  double cost = 0.0;
  /// True iff winning is free: DDR̄(customer) overlaps SR(q), so only q
  /// moves, inside its safe region.
  bool free_win = false;
  /// Where to move q (within the safe region).
  Point query_move;
  /// Where to move the customer (case C2 only).
  std::optional<Point> customer_move;
};

/// The paper's targeted-marketing use case (Section VI), productized:
/// ranks the customers *outside* RSL(q) by the cheapest way to win them
/// without losing anyone already interested. The safe region is computed
/// once and shared across all candidates (the reuse the paper
/// highlights). Results are cost-ascending, free wins first among ties.
std::vector<Prospect> RankProspects(const WhyNotEngine& engine,
                                    const Point& q,
                                    const ProspectOptions& options = {});

}  // namespace wnrs

#endif  // WNRS_CORE_PROSPECT_H_
