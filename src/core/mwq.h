#ifndef WNRS_CORE_MWQ_H_
#define WNRS_CORE_MWQ_H_

#include <functional>
#include <optional>
#include <vector>

#include "core/cost.h"
#include "core/mwp.h"
#include "core/safe_region.h"
#include "geometry/region.h"
#include "index/rtree.h"

namespace wnrs {

/// Result of Algorithm 4 (Modify Query and Why-not Point).
struct MwqResult {
  /// True iff c_t was already in RSL(q).
  bool already_member = false;
  /// Case C1: DDR̄(c_t) overlaps SR(q) — only q moves, at zero cost
  /// (Eqn. 10). Case C2: q moves to the best safe-region corner and c_t
  /// moves the rest of the way.
  bool overlap = false;
  /// New query locations: in C1 the nearest point of each overlap
  /// rectangle to q (Fig. 12); in C2 the safe-region corner(s) paired with
  /// the cheapest why-not movement. Cost field = query-move cost under
  /// alpha (0 within the safe region by definition, reported for insight).
  std::vector<Candidate> query_candidates;
  /// Case C2 only: candidate new locations of c_t, cost-ascending under
  /// beta (Eqn. 11). Empty in case C1.
  std::vector<Candidate> why_not_candidates;
  /// The paper's reported solution cost: 0 for C1, best why-not movement
  /// cost for C2.
  double best_cost = 0.0;
};

/// Predicate verifying that a proposed q* keeps every existing
/// reverse-skyline customer; nullptr skips the check.
using KeepsMembersFn = std::function<bool(const Point& q_star)>;

/// The three product-index probes Algorithm 4 performs, abstracted so any
/// provider (one R*-tree, a packed slab, or a sharded union of engines)
/// can drive the identical control flow. All probes are implicitly about
/// the fixed why-not customer c_t passed alongside; only the query point
/// varies.
struct MwqPrimitives {
  /// True iff the window W(c_t, probe_q) holds no product (own tuple
  /// excluded by the provider).
  std::function<bool(const Point& probe_q)> window_empty;
  /// DSL(c_t) product ids (order immaterial: consumers re-sort; duplicate
  /// skyline points must all be reported, matching BbsDynamicSkyline).
  std::function<std::vector<RStarTree::Id>()> dynamic_skyline;
  /// Full Algorithm-1 answer for (c_t, probe_q), honoring the provider's
  /// fast-frontier choice.
  std::function<MwpResult(const Point& probe_q)> modify_why_not;
};

/// Algorithm 4: answers the why-not question while provably keeping every
/// existing reverse-skyline customer, by confining q to the safe region.
/// `safe_region` must be SR(q) (from ComputeSafeRegion or its approximate
/// variant); `universe` is the same rectangle the safe region was built
/// with. `keeps_members` (when provided) re-validates each proposed q*
/// with real window probes — closed-rectangle boundaries can otherwise
/// tie-lose a member at exactly the region border; candidates failing it
/// are discarded (q itself always passes, so C2 never comes up empty).
MwqResult ModifyQueryAndWhyNotPoint(
    const RStarTree& products_tree, const std::vector<Point>& products,
    const Point& c_t, const Point& q, const RectRegion& safe_region,
    const Rectangle& universe, const CostModel& cost_model,
    size_t sort_dim = 0,
    std::optional<RStarTree::Id> exclude_id = std::nullopt,
    const KeepsMembersFn& keeps_members = nullptr,
    bool fast_frontier = true);

/// Algorithm 4 over injected index primitives instead of a concrete tree
/// — the sharded engine routes each probe across its tiles and merges,
/// and this overload guarantees the surrounding control flow (case split,
/// corner generation, costing) is shared, hence bit-identical.
MwqResult ModifyQueryAndWhyNotPoint(
    const MwqPrimitives& primitives, const std::vector<Point>& products,
    const Point& c_t, const Point& q, const RectRegion& safe_region,
    const Rectangle& universe, const CostModel& cost_model,
    size_t sort_dim = 0, const KeepsMembersFn& keeps_members = nullptr);

}  // namespace wnrs

#endif  // WNRS_CORE_MWQ_H_
