#include "core/validate.h"

#include <cmath>

#include "common/random.h"
#include "common/string_util.h"
#include "reverse_skyline/window_query.h"

namespace wnrs {

namespace {

std::optional<RStarTree::Id> ExcludeFor(const AnswerValidationInput& in,
                                        size_t customer_index) {
  if (!in.shared_relation) return std::nullopt;
  return static_cast<RStarTree::Id>(customer_index);
}

/// Reverse-skyline membership of a (possibly moved) customer location
/// under a (possibly moved) query: window_query(c, q) empty. Boundary
/// answers tie with a culprit, so on a direct miss the probe retries with
/// the customer location nudged toward q on the engine's escalating
/// epsilon schedule.
bool MemberWithNudge(const AnswerValidationInput& in, const Point& c_loc,
                     const Point& q, std::optional<RStarTree::Id> exclude) {
  if (WindowEmpty(*in.products_tree, c_loc, q, exclude)) return true;
  double fraction = in.epsilon_fraction;
  for (int attempt = 0; attempt < 4; ++attempt) {
    Point nudged = c_loc;
    for (size_t i = 0; i < nudged.dims(); ++i) {
      const double range = in.universe.hi()[i] - in.universe.lo()[i];
      const double eps = fraction * (range > 0.0 ? range : 1.0);
      if (q[i] > nudged[i]) {
        nudged[i] += eps;
      } else if (q[i] < nudged[i]) {
        nudged[i] -= eps;
      }
    }
    if (WindowEmpty(*in.products_tree, nudged, q, exclude)) return true;
    fraction *= 100.0;
  }
  return false;
}

/// The query-side mirror: membership of customer c_loc under query q,
/// retrying with q nudged toward c_loc (shrinking the window).
bool MemberWithQueryNudge(const AnswerValidationInput& in, const Point& c_loc,
                          const Point& q,
                          std::optional<RStarTree::Id> exclude) {
  if (WindowEmpty(*in.products_tree, c_loc, q, exclude)) return true;
  double fraction = in.epsilon_fraction;
  for (int attempt = 0; attempt < 4; ++attempt) {
    Point nudged = q;
    for (size_t i = 0; i < nudged.dims(); ++i) {
      const double range = in.universe.hi()[i] - in.universe.lo()[i];
      const double eps = fraction * (range > 0.0 ? range : 1.0);
      if (c_loc[i] > nudged[i]) {
        nudged[i] += eps;
      } else if (c_loc[i] < nudged[i]) {
        nudged[i] -= eps;
      }
    }
    if (WindowEmpty(*in.products_tree, c_loc, nudged, exclude)) return true;
    fraction *= 100.0;
  }
  return false;
}

Status CheckCandidateOrder(const std::vector<Candidate>& candidates,
                           const char* which) {
  for (size_t i = 1; i < candidates.size(); ++i) {
    if (candidates[i].cost < candidates[i - 1].cost) {
      return Status::Internal(StrFormat(
          "[answer-order] %s candidate %zu has cost %.12g below its "
          "predecessor's %.12g — candidates must be cost-ascending",
          which, i, candidates[i].cost, candidates[i - 1].cost));
    }
  }
  return Status::Ok();
}

constexpr double kCostSlack = 1e-9;

}  // namespace

Status ValidateSafeRegion(const AnswerValidationInput& in,
                          const std::vector<size_t>& rsl, const Point& q,
                          const SafeRegionResult& sr,
                          size_t random_samples_per_rect, uint64_t seed) {
  if (!sr.region.Contains(q)) {
    return Status::Internal(
        "[sr-q-membership] SR(q) does not contain q itself (Lemma 2: the "
        "zero-move query always keeps every member)");
  }
  Rng rng(seed);
  const size_t dims = q.dims();
  for (size_t ri = 0; ri < sr.region.rects().size(); ++ri) {
    const Rectangle& rect = sr.region.rects()[ri];
    std::vector<Point> samples = {rect.lo(), rect.hi(), rect.Center()};
    for (size_t s = 0; s < random_samples_per_rect; ++s) {
      Point p(dims);
      for (size_t j = 0; j < dims; ++j) {
        p[j] = rect.lo()[j] == rect.hi()[j]
                   ? rect.lo()[j]
                   : rng.NextDouble(rect.lo()[j], rect.hi()[j]);
      }
      samples.push_back(std::move(p));
    }
    for (const Point& q_prime : samples) {
      for (size_t c : rsl) {
        // Closed rectangle boundaries can tie-lose a member exactly on
        // the region border; the membership probe's query-side nudge
        // (toward the customer, i.e. inward) absorbs exactly that tie,
        // while a genuinely unsafe region keeps failing.
        if (!MemberWithQueryNudge(in, (*in.customers)[c], q_prime,
                                  ExcludeFor(in, c))) {
          return Status::Internal(StrFormat(
              "[sr-soundness] moving q to sampled point %s of safe-region "
              "rectangle %zu loses reverse-skyline customer %zu — SR(q) "
              "must be a subset of the true safe region (Eqns. 8-11)",
              q_prime.ToString().c_str(), ri, c));
        }
      }
    }
  }
  return Status::Ok();
}

Status ValidateMwpAnswer(const AnswerValidationInput& in, size_t c,
                         const Point& q, const MwpResult& result) {
  WNRS_RETURN_IF_ERROR(CheckCandidateOrder(result.candidates, "MWP"));
  if (result.already_member) {
    if (result.candidates.empty() || result.candidates.front().cost != 0.0) {
      return Status::Internal(
          "[answer-cost] MWP reported already_member but no zero-cost "
          "candidate");
    }
    return Status::Ok();
  }
  const Point& c_t = (*in.customers)[c];
  for (size_t i = 0; i < result.candidates.size(); ++i) {
    const Candidate& cand = result.candidates[i];
    if (in.cost_model != nullptr) {
      const double expect = in.cost_model->WhyNotMoveCost(c_t, cand.point);
      if (std::fabs(expect - cand.cost) > kCostSlack) {
        return Status::Internal(StrFormat(
            "[answer-cost] MWP candidate %zu reports cost %.12g but the "
            "beta cost model gives %.12g",
            i, cand.cost, expect));
      }
    }
    if (!MemberWithNudge(in, cand.point, q, ExcludeFor(in, c))) {
      return Status::Internal(StrFormat(
          "[mwp-membership] MWP candidate %zu at %s is not a reverse-skyline "
          "member: q is outside DSL(c_t*) even after the epsilon nudge",
          i, cand.point.ToString().c_str()));
    }
  }
  return Status::Ok();
}

Status ValidateMqpAnswer(const AnswerValidationInput& in, size_t c,
                         const Point& q, const MqpResult& result) {
  WNRS_RETURN_IF_ERROR(CheckCandidateOrder(result.candidates, "MQP"));
  if (result.already_member) {
    if (result.candidates.empty() || result.candidates.front().cost != 0.0) {
      return Status::Internal(
          "[answer-cost] MQP reported already_member but no zero-cost "
          "candidate");
    }
    return Status::Ok();
  }
  const Point& c_t = (*in.customers)[c];
  for (size_t i = 0; i < result.candidates.size(); ++i) {
    const Candidate& cand = result.candidates[i];
    if (in.cost_model != nullptr) {
      const double expect = in.cost_model->QueryMoveCost(q, cand.point);
      if (std::fabs(expect - cand.cost) > kCostSlack) {
        return Status::Internal(StrFormat(
            "[answer-cost] MQP candidate %zu reports cost %.12g but the "
            "alpha cost model gives %.12g",
            i, cand.cost, expect));
      }
    }
    if (!MemberWithQueryNudge(in, c_t, cand.point, ExcludeFor(in, c))) {
      return Status::Internal(StrFormat(
          "[mqp-membership] MQP candidate %zu at %s does not put c_t into "
          "RSL(q*) even after the epsilon nudge",
          i, cand.point.ToString().c_str()));
    }
  }
  return Status::Ok();
}

Status ValidateMwqAnswer(const AnswerValidationInput& in, size_t c,
                         const Point& q, const std::vector<size_t>& rsl,
                         const MwqResult& result) {
  WNRS_RETURN_IF_ERROR(CheckCandidateOrder(result.query_candidates, "MWQ q*"));
  WNRS_RETURN_IF_ERROR(
      CheckCandidateOrder(result.why_not_candidates, "MWQ c_t*"));
  if (result.already_member) return Status::Ok();
  // Query candidates report the alpha query-move cost from q (for
  // insight); re-derive it.
  if (in.cost_model != nullptr) {
    for (size_t i = 0; i < result.query_candidates.size(); ++i) {
      const Candidate& cand = result.query_candidates[i];
      const double expect = in.cost_model->QueryMoveCost(q, cand.point);
      if (std::fabs(expect - cand.cost) > kCostSlack) {
        return Status::Internal(StrFormat(
            "[answer-cost] MWQ query candidate %zu reports cost %.12g but "
            "the alpha cost model gives %.12g",
            i, cand.cost, expect));
      }
    }
  }
  // The one guarantee of Algorithm 4: no proposed query location loses an
  // existing reverse-skyline customer.
  for (size_t i = 0; i < result.query_candidates.size(); ++i) {
    const Point& q_star = result.query_candidates[i].point;
    for (size_t member : rsl) {
      if (member == c) continue;  // The why-not customer is not yet a member.
      if (!MemberWithQueryNudge(in, (*in.customers)[member], q_star,
                                ExcludeFor(in, member))) {
        return Status::Internal(StrFormat(
            "[mwq-no-lost-customer] MWQ query candidate %zu at %s loses "
            "existing reverse-skyline customer %zu — q left the safe region",
            i, q_star.ToString().c_str(), member));
      }
    }
  }
  if (result.overlap) {
    // Case C1: q alone moves, the why-not customer is won at zero cost.
    if (result.best_cost != 0.0) {
      return Status::Internal(StrFormat(
          "[answer-cost] MWQ case C1 (overlap) must have best_cost 0, got "
          "%.12g",
          result.best_cost));
    }
    for (size_t i = 0; i < result.query_candidates.size(); ++i) {
      const Point& q_star = result.query_candidates[i].point;
      if (!MemberWithQueryNudge(in, (*in.customers)[c], q_star,
                                ExcludeFor(in, c))) {
        return Status::Internal(StrFormat(
            "[mwq-membership] MWQ C1 query candidate %zu at %s does not put "
            "the why-not customer into RSL(q*)",
            i, q_star.ToString().c_str()));
      }
    }
    return Status::Ok();
  }
  // Case C2: q moves to a safe-region point, c_t moves the rest.
  if (result.query_candidates.empty() || result.why_not_candidates.empty()) {
    return Status::Ok();  // No feasible answer reported; nothing to check.
  }
  if (std::fabs(result.best_cost - result.why_not_candidates.front().cost) >
      kCostSlack) {
    return Status::Internal(StrFormat(
        "[answer-cost] MWQ best_cost %.12g != cheapest why-not movement "
        "%.12g",
        result.best_cost, result.why_not_candidates.front().cost));
  }
  const Point& q_star = result.query_candidates.front().point;
  if (in.cost_model != nullptr) {
    for (size_t i = 0; i < result.why_not_candidates.size(); ++i) {
      const Candidate& cand = result.why_not_candidates[i];
      const double expect =
          in.cost_model->WhyNotMoveCost((*in.customers)[c], cand.point);
      if (std::fabs(expect - cand.cost) > kCostSlack) {
        return Status::Internal(StrFormat(
            "[answer-cost] MWQ why-not candidate %zu reports cost %.12g but "
            "the beta cost model gives %.12g",
            i, cand.cost, expect));
      }
    }
  }
  for (size_t i = 0; i < result.why_not_candidates.size(); ++i) {
    const Candidate& cand = result.why_not_candidates[i];
    if (!MemberWithNudge(in, cand.point, q_star, ExcludeFor(in, c))) {
      return Status::Internal(StrFormat(
          "[mwq-membership] MWQ why-not candidate %zu at %s is not a "
          "reverse-skyline member under the proposed q* %s",
          i, cand.point.ToString().c_str(), q_star.ToString().c_str()));
    }
  }
  return Status::Ok();
}

}  // namespace wnrs
