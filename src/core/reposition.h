#ifndef WNRS_CORE_REPOSITION_H_
#define WNRS_CORE_REPOSITION_H_

#include <vector>

#include "core/engine.h"

namespace wnrs {

/// One what-if outcome: move q to q_star and the reverse skyline changes
/// from RSL(q) to RSL(q_star).
struct RepositionOption {
  Point q_star;
  /// Query-move cost under the alpha weights.
  double move_cost = 0.0;
  /// Customers gained: in RSL(q_star) but not RSL(q).
  std::vector<size_t> gained;
  /// Customers lost: in RSL(q) but not RSL(q_star). Empty whenever q_star
  /// lies inside the safe region.
  std::vector<size_t> lost;
  int net() const {
    return static_cast<int>(gained.size()) - static_cast<int>(lost.size());
  }
};

/// What-if analysis result.
struct RepositionAnalysis {
  std::vector<size_t> current_members;
  /// Options sorted by net customer change (descending), ties by move
  /// cost (ascending).
  std::vector<RepositionOption> options;
};

/// Market-repositioning what-if: evaluates candidate new locations for the
/// query product and reports exactly which customers each would gain and
/// lose (full reverse-skyline recomputation per candidate — exact, not
/// estimated). This generalizes the paper's safe-region story: inside
/// SR(q) the lost list is provably empty; outside, the trade becomes
/// visible. With `candidates` empty, candidates are generated
/// automatically from the safe region (corners pulled to the interior and
/// rectangle centers) plus q itself as the baseline.
RepositionAnalysis AnalyzeRepositioning(
    const WhyNotEngine& engine, const Point& q,
    std::vector<Point> candidates = {}, size_t max_options = 16);

}  // namespace wnrs

#endif  // WNRS_CORE_REPOSITION_H_
