#ifndef WNRS_CORE_REPORT_H_
#define WNRS_CORE_REPORT_H_

#include <string>

#include "core/engine.h"

namespace wnrs {

/// Rendering knobs for why-not reports.
struct ReportOptions {
  /// At most this many culprit products are listed verbatim.
  size_t max_culprits_listed = 8;
  /// At most this many candidates per method.
  size_t max_candidates = 4;
  /// Include the safe region rectangles.
  bool include_safe_region = true;
};

/// Renders a complete why-not answer — the explanation (aspect 1), the
/// MWP / MQP / MWQ suggestions (aspects 2-3), and the safe region — as a
/// human-readable multi-line string. This is the "cooperative system
/// response" the paper's introduction motivates, in one call; the CLI and
/// examples render through it.
std::string RenderWhyNotReport(const WhyNotEngine& engine, size_t customer,
                               const Point& q,
                               const ReportOptions& options = {});

}  // namespace wnrs

#endif  // WNRS_CORE_REPORT_H_
