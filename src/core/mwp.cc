#include "core/mwp.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "geometry/dominance.h"
#include "geometry/transform.h"
#include "reverse_skyline/window_query.h"
#include "skyline/bnl.h"
#include "skyline/staircase.h"

namespace wnrs {
namespace {

/// Mirrors `p` in every dimension where `flip` is set, around the pivot.
/// Per-dimension reflection around q preserves all coordinate distances,
/// so dominance relations in anyone's distance space are unchanged.
Point MirrorAround(const Point& p, const Point& pivot,
                   const std::vector<bool>& flip) {
  Point out = p;
  for (size_t i = 0; i < p.dims(); ++i) {
    if (flip[i]) out[i] = 2.0 * pivot[i] - p[i];
  }
  return out;
}

/// Shared tail of both MWP variants: candidate generation from the
/// frontier (original-space points), feasibility filtering, and costing.
void FinishMwp(const Point& c_t, const Point& q,
               const std::vector<Point>& frontier_original,
               const CostModel& cost_model, size_t sort_dim,
               MwpResult* out) {
  const size_t dims = q.dims();

  // Canonical orientation: mirror dimensions around q so that c_t <= q.
  std::vector<bool> flip(dims, false);
  for (size_t i = 0; i < dims; ++i) flip[i] = c_t[i] > q[i];
  const Point c_canon = MirrorAround(c_t, q, flip);

  // Escape thresholds: per-dimension midpoints between frontier point and
  // q (Eqn. 1 in canonical orientation).
  std::vector<Point> thresholds;
  thresholds.reserve(frontier_original.size());
  for (const Point& e : frontier_original) {
    const Point e_canon = MirrorAround(e, q, flip);
    Point u(dims);
    for (size_t i = 0; i < dims; ++i) u[i] = 0.5 * (e_canon[i] + q[i]);
    thresholds.push_back(std::move(u));
  }

  std::vector<Point> canon_candidates = StaircaseCandidates(
      thresholds, sort_dim, StaircaseMerge::kMin, c_canon);

  // Feasibility: a candidate must escape every threshold box — strictly
  // beyond the midpoint toward q in some dimension, or on a boundary an
  // epsilon nudge toward q can cross (impossible when the culprit ties q
  // in that dimension). Infeasible end candidates arise when a frontier
  // culprit shares a coordinate with q; they are dropped.
  auto feasible = [&](const Point& cc) {
    for (const Point& u : thresholds) {
      bool escapes = false;
      for (size_t i = 0; i < dims && !escapes; ++i) {
        if (cc[i] > u[i] || (cc[i] == u[i] && u[i] < q[i])) escapes = true;
      }
      if (!escapes) return false;
    }
    return true;
  };
  MetricAdd(CounterId::kCandidatesGenerated, canon_candidates.size());
  std::vector<Point> kept;
  kept.reserve(canon_candidates.size());
  for (Point& cc : canon_candidates) {
    if (feasible(cc)) kept.push_back(std::move(cc));
  }
  if (kept.empty()) {
    // Guaranteed-feasible fallback: the coordinate-wise maximum of all
    // thresholds escapes every box in whichever dimensions remain open.
    Point u_max = thresholds.front();
    for (const Point& u : thresholds) {
      for (size_t i = 0; i < dims; ++i) u_max[i] = std::max(u_max[i], u[i]);
    }
    kept.push_back(std::move(u_max));
  }

  MetricAdd(CounterId::kCandidatesExamined, kept.size());
  out->candidates.reserve(kept.size());
  for (const Point& cc : kept) {
    Point c_star = MirrorAround(cc, q, flip);
    const double cost = cost_model.WhyNotMoveCost(c_t, c_star);
    out->candidates.push_back({std::move(c_star), cost});
  }
  SortCandidates(&out->candidates);
}

}  // namespace

MwpResult ModifyWhyNotPointFromCulprits(const std::vector<Point>& products,
                                        std::vector<RStarTree::Id> culprits,
                                        const Point& c_t, const Point& q,
                                        const CostModel& cost_model,
                                        size_t sort_dim) {
  WNRS_CHECK(c_t.dims() == q.dims());
  MwpResult out;
  out.culprits = std::move(culprits);
  if (out.culprits.empty()) {
    out.already_member = true;
    out.candidates.push_back({c_t, 0.0});
    return out;
  }

  // Frontier F: culprits closest to q — the skyline of Λ in q's distance
  // space. Computed with BNL (O(|Λ| * |F|)) rather than the pairwise
  // O(|Λ|^2) of the pseudo-code.
  std::vector<Point> lambda_t;
  lambda_t.reserve(out.culprits.size());
  for (RStarTree::Id id : out.culprits) {
    WNRS_CHECK(static_cast<size_t>(id) < products.size());
    lambda_t.push_back(ToDistanceSpace(products[static_cast<size_t>(id)], q));
  }
  std::vector<Point> frontier;
  for (size_t idx : SkylineIndicesBnl(lambda_t)) {
    frontier.push_back(
        products[static_cast<size_t>(out.culprits[idx])]);
  }

  FinishMwp(c_t, q, frontier, cost_model, sort_dim, &out);
  return out;
}

MwpResult ModifyWhyNotPointFromFrontier(
    const std::vector<Point>& products,
    std::vector<RStarTree::Id> frontier_ids, const Point& c_t, const Point& q,
    const CostModel& cost_model, size_t sort_dim) {
  WNRS_CHECK(c_t.dims() == q.dims());
  MwpResult out;
  out.culprits = std::move(frontier_ids);
  if (out.culprits.empty()) {
    out.already_member = true;
    out.candidates.push_back({c_t, 0.0});
    return out;
  }
  std::vector<Point> frontier;
  frontier.reserve(out.culprits.size());
  for (RStarTree::Id id : out.culprits) {
    WNRS_CHECK(static_cast<size_t>(id) < products.size());
    frontier.push_back(products[static_cast<size_t>(id)]);
  }
  FinishMwp(c_t, q, frontier, cost_model, sort_dim, &out);
  return out;
}

MwpResult ModifyWhyNotPoint(const RStarTree& tree,
                            const std::vector<Point>& products,
                            const Point& c_t, const Point& q,
                            const CostModel& cost_model, size_t sort_dim,
                            std::optional<RStarTree::Id> exclude_id) {
  WNRS_CHECK(c_t.dims() == q.dims());
  return ModifyWhyNotPointFromCulprits(
      products, WindowQuery(tree, c_t, q, exclude_id), c_t, q, cost_model,
      sort_dim);
}

MwpResult ModifyWhyNotPointFast(const RStarTree& tree,
                                const std::vector<Point>& products,
                                const Point& c_t, const Point& q,
                                const CostModel& cost_model, size_t sort_dim,
                                std::optional<RStarTree::Id> exclude_id) {
  WNRS_CHECK(c_t.dims() == q.dims());
  return ModifyWhyNotPointFromFrontier(
      products, WindowSkyline(tree, c_t, q, /*origin=*/q, exclude_id), c_t, q,
      cost_model, sort_dim);
}

}  // namespace wnrs
