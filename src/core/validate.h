#ifndef WNRS_CORE_VALIDATE_H_
#define WNRS_CORE_VALIDATE_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "core/cost.h"
#include "core/mqp.h"
#include "core/mwp.h"
#include "core/mwq.h"
#include "core/safe_region.h"
#include "index/rtree.h"

namespace wnrs {

/// Deep semantic validators for the why-not algorithms. Like the index
/// validators they return Status::Ok() or Status::Internal with the
/// violated invariant named in [brackets]; unlike them they re-verify
/// results against the ground truth the paper defines — real window
/// probes over the product tree — so they catch a *wrong answer*, not
/// just a corrupt structure. They are driven by the seeded-corruption
/// tests, the fuzz tests, and WhyNotEngineOptions::paranoid_checks.
///
/// All probes run against the dynamic tree. When the engine serves
/// queries from the packed read path this is deliberate: validating with
/// the *other* implementation of the same traversal makes the check
/// independent of the code path that produced the answer.
struct AnswerValidationInput {
  const RStarTree* products_tree = nullptr;
  /// Customer points (equal to the product points in shared-relation
  /// mode); why-not indices address this vector.
  const std::vector<Point>* customers = nullptr;
  /// Shared-relation mode: customer index == product id, and a customer's
  /// own tuple is excluded from its window probes.
  bool shared_relation = false;
  /// The paper's boundary-semantics answers tie with a culprit product;
  /// membership probes therefore retry with an epsilon nudge toward the
  /// membership target (this fraction of each dimension's universe range,
  /// escalating x100 for up to 4 attempts — the engine's own strict-nudge
  /// schedule) before declaring an answer unsound.
  double epsilon_fraction = 1e-9;
  Rectangle universe;
  /// When set, candidate costs are re-derived and compared (1e-9 slack).
  const CostModel* cost_model = nullptr;
};

/// Safe-region soundness (Lemma 2 + Eqns. 8-11): SR(q) must contain q
/// itself ([sr-q-membership]), and no point of SR(q) may lose a customer
/// — for every sampled q' in the region (rectangle corners, centers, and
/// `random_samples_per_rect` seeded interior draws) every member of
/// `rsl` must still pass its reverse-skyline window probe
/// ([sr-soundness]). `rsl` is RSL(q) as customer indices.
Status ValidateSafeRegion(const AnswerValidationInput& in,
                          const std::vector<size_t>& rsl, const Point& q,
                          const SafeRegionResult& sr,
                          size_t random_samples_per_rect = 2,
                          uint64_t seed = 0x5AFE);

/// MWP (Algorithm 1) answers: candidates cost-ascending
/// ([answer-order]), costs consistent with the beta weights
/// ([answer-cost]), and every candidate location c_t* actually a reverse
/// skyline member — q in DSL(c_t*) — under the nudge-tolerant probe
/// ([mwp-membership]). `c` is the why-not customer index.
Status ValidateMwpAnswer(const AnswerValidationInput& in, size_t c,
                         const Point& q, const MwpResult& result);

/// MQP (Algorithm 2) answers: ordering and alpha-cost consistency as
/// above, and c_t in RSL(q*) for every candidate q* ([mqp-membership]).
Status ValidateMqpAnswer(const AnswerValidationInput& in, size_t c,
                         const Point& q, const MqpResult& result);

/// MWQ (Algorithm 4) answers: every proposed query location keeps every
/// existing reverse-skyline customer in `rsl` ([mwq-no-lost-customer] —
/// the guarantee Algorithm 4 exists to provide), and in case C2 the
/// why-not candidates are members under the proposed q*
/// ([mwq-membership]) with best_cost matching the cheapest one
/// ([answer-cost]).
Status ValidateMwqAnswer(const AnswerValidationInput& in, size_t c,
                         const Point& q, const std::vector<size_t>& rsl,
                         const MwqResult& result);

}  // namespace wnrs

#endif  // WNRS_CORE_VALIDATE_H_
