#include "core/mwq.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "core/mwp.h"
#include "geometry/dominance.h"
#include "geometry/transform.h"
#include "reverse_skyline/window_query.h"
#include "skyline/bbs.h"
#include "skyline/ddr.h"

namespace wnrs {
namespace {

/// All 2^d corner points of a rectangle, each pulled infinitesimally
/// toward the rectangle's center. Corners lie on the closed boundary of
/// the safe region where an existing reverse-skyline member can be lost
/// to a dominance tie; the interior of a safe rectangle is strictly safe.
void AppendCorners(const Rectangle& r, std::vector<Point>* out) {
  const size_t dims = r.dims();
  WNRS_CHECK(dims < 25);  // 2^d corners; guard absurd dimensionality.
  constexpr double kPull = 1e-9;
  const Point center = r.Center();
  const size_t count = static_cast<size_t>(1) << dims;
  for (size_t mask = 0; mask < count; ++mask) {
    Point corner(dims);
    for (size_t i = 0; i < dims; ++i) {
      corner[i] = (mask >> i) & 1 ? r.hi()[i] : r.lo()[i];
      corner[i] += kPull * (center[i] - corner[i]);
    }
    out->push_back(std::move(corner));
  }
}

}  // namespace

MwqResult ModifyQueryAndWhyNotPoint(
    const RStarTree& products_tree, const std::vector<Point>& products,
    const Point& c_t, const Point& q, const RectRegion& safe_region,
    const Rectangle& universe, const CostModel& cost_model, size_t sort_dim,
    std::optional<RStarTree::Id> exclude_id,
    const KeepsMembersFn& keeps_members, bool fast_frontier) {
  MwqPrimitives primitives;
  primitives.window_empty = [&](const Point& probe_q) {
    return WindowEmpty(products_tree, c_t, probe_q, exclude_id);
  };
  primitives.dynamic_skyline = [&] {
    return BbsDynamicSkyline(products_tree, c_t, exclude_id);
  };
  primitives.modify_why_not = [&](const Point& probe_q) {
    return fast_frontier
               ? ModifyWhyNotPointFast(products_tree, products, c_t, probe_q,
                                       cost_model, sort_dim, exclude_id)
               : ModifyWhyNotPoint(products_tree, products, c_t, probe_q,
                                   cost_model, sort_dim, exclude_id);
  };
  return ModifyQueryAndWhyNotPoint(primitives, products, c_t, q, safe_region,
                                   universe, cost_model, sort_dim,
                                   keeps_members);
}

MwqResult ModifyQueryAndWhyNotPoint(
    const MwqPrimitives& primitives, const std::vector<Point>& products,
    const Point& c_t, const Point& q, const RectRegion& safe_region,
    const Rectangle& universe, const CostModel& cost_model, size_t sort_dim,
    const KeepsMembersFn& keeps_members) {
  WNRS_CHECK(c_t.dims() == q.dims());
  MwqResult out;
  if (primitives.window_empty(q)) {
    out.already_member = true;
    out.query_candidates.push_back({q, 0.0});
    return out;
  }

  // DDR̄(c_t), rectangle representation.
  const std::vector<RStarTree::Id> dsl = primitives.dynamic_skyline();
  std::vector<Point> dsl_t;
  dsl_t.reserve(dsl.size());
  for (RStarTree::Id id : dsl) {
    WNRS_CHECK(static_cast<size_t>(id) < products.size());
    dsl_t.push_back(ToDistanceSpace(products[static_cast<size_t>(id)], c_t));
  }
  RectRegion ddr_bar = AntiDominanceRegion(
      c_t, std::move(dsl_t), MaxExtents(c_t, universe), sort_dim);
  ddr_bar.ClipTo(universe);

  // Case split of Table I. Because both regions use closed rectangles, an
  // intersection can be a degenerate (zero-extent) face on which c_t only
  // ties with a frontier product; such an overlap is an artifact, so every
  // C1 candidate is validated with a real membership probe (nudged into
  // the rectangle's interior if the boundary point ties).
  const RectRegion overlap_region = safe_region.Intersect(ddr_bar);
  for (const Rectangle& rect : overlap_region.rects()) {
    const Point center = rect.Center();
    const Point nearest = rect.NearestPointTo(q);
    bool found = false;
    Point q_star;
    for (double pull : {0.0, 1e-9, 1e-6, 1e-3}) {
      Point inner(nearest.dims());
      for (size_t i = 0; i < nearest.dims(); ++i) {
        inner[i] = nearest[i] + pull * (center[i] - nearest[i]);
      }
      if (primitives.window_empty(inner) &&
          (keeps_members == nullptr || keeps_members(inner))) {
        q_star = std::move(inner);
        found = true;
        break;
      }
    }
    if (!found) continue;  // Degenerate face; not a usable overlap.
    const double move = cost_model.QueryMoveCost(q, q_star);
    out.query_candidates.push_back({std::move(q_star), move});
  }
  if (!out.query_candidates.empty()) {
    // C1: move q within the overlap; zero cost by Eqn. 10 since q stays
    // inside its safe region.
    out.overlap = true;
    SortCandidates(&out.query_candidates);
    out.best_cost = 0.0;
    return out;
  }

  // C2: push q to the safe-region corners facing c_t, then move c_t the
  // remaining distance with Algorithm 1. q itself is also a zero-cost
  // safe location (Lemma 2), so it joins the candidate set — this
  // guarantees the MWQ answer never costs more than plain MWP.
  std::vector<Point> corners;
  for (const Rectangle& rect : safe_region.rects()) {
    AppendCorners(rect, &corners);
  }
  corners.push_back(q);
  WNRS_CHECK(!corners.empty());
  MetricAdd(CounterId::kCandidatesGenerated, corners.size());

  // Keep corners whose transformed image (c_t as origin) is not dominated:
  // the ones closest to the why-not customer.
  std::vector<Point> corners_t;
  corners_t.reserve(corners.size());
  for (const Point& e : corners) {
    corners_t.push_back(ToDistanceSpace(e, c_t));
  }
  std::vector<size_t> candidates_q;
  for (size_t a = 0; a < corners.size(); ++a) {
    bool dominated = false;
    for (size_t b = 0; b < corners.size() && !dominated; ++b) {
      if (a == b) continue;
      if (Dominates(corners_t[b], corners_t[a])) dominated = true;
      // Exact duplicates: keep the first occurrence only.
      if (corners_t[b] == corners_t[a] && b < a) dominated = true;
    }
    if (dominated) continue;
    // Closed-boundary safety: drop corners that would tie-lose a member.
    // q itself (the last entry) always passes.
    if (keeps_members != nullptr && !keeps_members(corners[a])) continue;
    candidates_q.push_back(a);
  }
  if (candidates_q.empty()) {
    // Every corner was either dominated by a boundary-failing corner or
    // failed validation itself; fall back to keeping q in place.
    candidates_q.push_back(corners.size() - 1);
  }
  MetricAdd(CounterId::kCandidatesExamined, candidates_q.size());

  double best = std::numeric_limits<double>::infinity();
  std::vector<Candidate> all_moves;
  std::vector<std::pair<size_t, double>> corner_best;  // corner -> best cost
  for (size_t idx : candidates_q) {
    const Point& e = corners[idx];
    const MwpResult mwp = primitives.modify_why_not(e);
    double corner_cost = std::numeric_limits<double>::infinity();
    for (const Candidate& cand : mwp.candidates) {
      corner_cost = std::min(corner_cost, cand.cost);
      all_moves.push_back(cand);
    }
    corner_best.emplace_back(idx, corner_cost);
    best = std::min(best, corner_cost);
  }

  // Report the corner(s) achieving the best cost as the query movement,
  // and all why-not movements ranked by Eqn. 11.
  for (const auto& [idx, cost] : corner_best) {
    if (cost <= best) {
      out.query_candidates.push_back(
          {corners[idx], cost_model.QueryMoveCost(q, corners[idx])});
    }
  }
  SortCandidates(&out.query_candidates);
  SortCandidates(&all_moves);
  // Deduplicate movements that differ only by the corner-interior nudge.
  for (Candidate& cand : all_moves) {
    bool duplicate = false;
    for (const Candidate& kept : out.why_not_candidates) {
      if (kept.point.ApproxEquals(cand.point, 1e-6)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) out.why_not_candidates.push_back(std::move(cand));
  }
  out.best_cost = best;
  return out;
}

}  // namespace wnrs
