#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "core/strict.h"
#include "core/validate.h"
#include "geometry/transform.h"
#include "index/bulk_load.h"
#include "index/packed_rtree.h"
#include "index/validate.h"
#include "reverse_skyline/bbrs.h"
#include "reverse_skyline/window_query.h"
#include "skyline/approx.h"
#include "skyline/bbs.h"
#include "storage/engine_store.h"
#include "storage/file_io.h"
#include "storage/packed_slab.h"
#include "storage/tree_store.h"

namespace wnrs {
namespace {

/// Bound on the query-keyed reverse-skyline memo; evicted FIFO. Workloads
/// revisit a handful of query points (the paper's batch setting), so a
/// small bound suffices and keeps lookup a linear scan.
constexpr size_t kRslCacheCapacity = 64;

/// Bound on the per-core safe-region caches (exact and approximated).
/// Concurrent serving interleaves several query points, so the cache
/// holds a few of them instead of the single most recent one; entries are
/// shared_ptr so an evicted result stays alive for whoever holds it.
constexpr size_t kSrCacheCapacity = 8;

Rectangle UnionBounds(const Dataset& a, const Dataset& b) {
  Rectangle bounds = a.Bounds();
  if (!b.points.empty()) {
    bounds = bounds.BoundingUnion(b.Bounds());
  }
  return bounds;
}

CostModel MakeCostModel(const Rectangle& universe,
                        const WhyNotEngineOptions& options) {
  std::vector<double> alpha = options.alpha;
  std::vector<double> beta = options.beta;
  if (alpha.empty()) alpha = EqualWeights(universe.dims());
  if (beta.empty()) beta = EqualWeights(universe.dims());
  return CostModel(universe, std::move(alpha), std::move(beta));
}

/// Anchors for the reference-returning legacy SafeRegion/ApproxSafeRegion
/// facade methods: the last result handed out on this thread is pinned
/// here, so the reference stays valid across cache eviction and engine
/// mutation until the thread's next call.
thread_local std::shared_ptr<const SafeRegionResult> tls_sr_anchor;
thread_local std::shared_ptr<const SafeRegionResult> tls_approx_sr_anchor;

}  // namespace

namespace internal {

/// Everything WhyNotEngine::Open reconstructs from a bundle directory
/// before it can seed an EngineCore. Cross-file consistency is verified
/// by Open (Status, not aborts) before the core constructor runs.
struct RestoredEngineParts {
  WhyNotEngineOptions options;
  bool shared_relation = false;
  std::shared_ptr<const Dataset> products;
  std::shared_ptr<const Dataset> customers;
  std::shared_ptr<const RStarTree> tree;
  std::shared_ptr<const RStarTree> customer_tree;
  std::shared_ptr<const PackedRTree> packed_tree;
  std::shared_ptr<const PackedRTree> packed_customer_tree;
  std::vector<bool> removed;
  Rectangle universe;
  std::shared_ptr<ThreadPool> pool;
};

/// The immutable heart of the engine. Every field set up at construction
/// is read-only afterwards; the caches at the bottom are internally
/// synchronized, so a core is safe to share between any number of
/// threads. Mutations never touch a published core — they copy it (the
/// heavyweight components are shared_ptrs, copied only when they actually
/// change) and publish the copy.
struct EngineCore {
  WhyNotEngineOptions options;
  bool shared_relation = false;
  std::shared_ptr<const Dataset> products;
  /// Bichromatic mode only; null when the relation is shared.
  std::shared_ptr<const Dataset> customers;
  std::shared_ptr<const RStarTree> tree;
  std::shared_ptr<const RStarTree> customer_tree;
  /// Frozen arena images of the trees above, serving the query hot loops
  /// when options.use_packed_read_path is set (null otherwise). Rebuilt
  /// by every mutation that changes the corresponding source tree; in
  /// shared-relation mode packed_customer_tree stays null (packed_tree
  /// plays both roles, like `tree`).
  std::shared_ptr<const PackedRTree> packed_tree;
  std::shared_ptr<const PackedRTree> packed_customer_tree;
  /// Tombstones (shared-relation customers disappear with their product).
  std::vector<bool> removed;
  Rectangle universe;
  CostModel cost_model;
  /// Section VI-B.1 offline store; null/empty = absent.
  std::shared_ptr<const std::vector<std::vector<Point>>> approx_dsls;
  size_t approx_k = 0;
  std::shared_ptr<ThreadPool> pool;

  // Derived caches. Mutex-guarded FIFO memos keyed by query point; the
  // values are shared_ptr (safe-region) or plain vectors (RSL) and are
  // computed outside the lock, first insert wins.
  mutable Mutex rsl_mu;
  mutable std::vector<std::pair<Point, std::vector<size_t>>> rsl_memo
      WNRS_GUARDED_BY(rsl_mu);
  mutable Mutex sr_mu;
  mutable std::vector<std::pair<Point, std::shared_ptr<const SafeRegionResult>>>
      sr_cache WNRS_GUARDED_BY(sr_mu);
  mutable Mutex approx_sr_mu;
  mutable std::vector<std::pair<Point, std::shared_ptr<const SafeRegionResult>>>
      approx_sr_cache WNRS_GUARDED_BY(approx_sr_mu);

  EngineCore(Dataset products_in, WhyNotEngineOptions options_in,
             std::shared_ptr<ThreadPool> pool_in)
      : options(options_in),
        shared_relation(true),
        products(std::make_shared<const Dataset>(std::move(products_in))),
        tree(std::make_shared<const RStarTree>(BulkLoadPoints(
            products->dims, products->points, options.rtree))),
        universe(products->Bounds()),
        cost_model(MakeCostModel(universe, options)),
        pool(std::move(pool_in)) {
    WNRS_CHECK(!products->points.empty());
    if (options.use_packed_read_path) {
      packed_tree =
          std::make_shared<const PackedRTree>(PackedRTree::Freeze(*tree));
    }
    ParanoidCheckIndex();
  }

  EngineCore(Dataset products_in, Dataset customers_in,
             WhyNotEngineOptions options_in,
             std::shared_ptr<ThreadPool> pool_in)
      : options(options_in),
        shared_relation(false),
        products(std::make_shared<const Dataset>(std::move(products_in))),
        customers(std::make_shared<const Dataset>(std::move(customers_in))),
        tree(std::make_shared<const RStarTree>(BulkLoadPoints(
            products->dims, products->points, options.rtree))),
        customer_tree(std::make_shared<const RStarTree>(BulkLoadPoints(
            customers->dims, customers->points, options.rtree))),
        universe(UnionBounds(*products, *customers)),
        cost_model(MakeCostModel(universe, options)),
        pool(std::move(pool_in)) {
    WNRS_CHECK(products->dims == customers->dims);
    WNRS_CHECK(!products->points.empty());
    WNRS_CHECK(!customers->points.empty());
    if (options.use_packed_read_path) {
      packed_tree =
          std::make_shared<const PackedRTree>(PackedRTree::Freeze(*tree));
      packed_customer_tree = std::make_shared<const PackedRTree>(
          PackedRTree::Freeze(*customer_tree));
    }
    ParanoidCheckIndex();
  }

  /// Restore constructor (WhyNotEngine::Open): adopts components loaded
  /// from a bundle instead of building them from raw datasets. The
  /// universe comes from the bundle, not from Bounds() — AddProduct may
  /// have widened it past the current points — and the cost model is
  /// recomputed from that persisted universe, so cost numbers match the
  /// saved engine exactly.
  explicit EngineCore(RestoredEngineParts parts)
      : options(std::move(parts.options)),
        shared_relation(parts.shared_relation),
        products(std::move(parts.products)),
        customers(std::move(parts.customers)),
        tree(std::move(parts.tree)),
        customer_tree(std::move(parts.customer_tree)),
        packed_tree(std::move(parts.packed_tree)),
        packed_customer_tree(std::move(parts.packed_customer_tree)),
        removed(std::move(parts.removed)),
        universe(std::move(parts.universe)),
        cost_model(MakeCostModel(universe, options)),
        pool(std::move(parts.pool)) {
    WNRS_CHECK(products != nullptr && !products->points.empty());
    WNRS_CHECK(shared_relation == (customers == nullptr));
    ParanoidCheckIndex();
  }

  /// Copy-on-write seed: copies the state, starts with fresh (empty)
  /// caches. Mutations adjust the fields that changed and publish.
  EngineCore(const EngineCore& other)
      : options(other.options),
        shared_relation(other.shared_relation),
        products(other.products),
        customers(other.customers),
        tree(other.tree),
        customer_tree(other.customer_tree),
        packed_tree(other.packed_tree),
        packed_customer_tree(other.packed_customer_tree),
        removed(other.removed),
        universe(other.universe),
        cost_model(other.cost_model),
        approx_dsls(other.approx_dsls),
        approx_k(other.approx_k),
        pool(other.pool) {}
  EngineCore& operator=(const EngineCore&) = delete;

  const Dataset& customer_dataset() const {
    return shared_relation ? *products : *customers;
  }

  bool HasApproxDsls() const {
    return approx_dsls != nullptr && !approx_dsls->empty();
  }

  std::optional<RStarTree::Id> ExcludeFor(size_t customer_index) const {
    if (!shared_relation) return std::nullopt;
    return static_cast<RStarTree::Id>(customer_index);
  }

  const Point& CustomerPoint(size_t c) const {
    const Dataset& ds = customer_dataset();
    WNRS_CHECK(c < ds.points.size());
    return ds.points[c];
  }

  // ---- Input validation (the Try* layer's non-aborting counterparts of
  // the WNRS_CHECKs above). ----

  Status ValidatePoint(const Point& p, const char* what) const {
    if (p.dims() != products->dims) {
      return Status::InvalidArgument(
          StrFormat("%s has %zu dimensions, engine has %zu", what, p.dims(),
                    products->dims));
    }
    for (size_t i = 0; i < p.dims(); ++i) {
      if (!std::isfinite(p[i])) {
        return Status::InvalidArgument(
            StrFormat("%s has a non-finite coordinate at dimension %zu", what,
                      i));
      }
    }
    return Status::Ok();
  }

  Status ValidateQuery(const Point& q) const {
    return ValidatePoint(q, "query point");
  }

  Status ValidateCustomer(size_t c) const {
    const Dataset& ds = customer_dataset();
    if (c >= ds.points.size()) {
      return Status::OutOfRange(
          StrFormat("customer index %zu out of range (engine has %zu)", c,
                    ds.points.size()));
    }
    if (shared_relation && c < removed.size() && removed[c]) {
      return Status::NotFound(
          StrFormat("customer %zu refers to a removed product", c));
    }
    return Status::Ok();
  }

  Status ValidateApproxStore() const {
    if (!HasApproxDsls()) {
      return Status::FailedPrecondition(
          "approximated-DSL store missing; run PrecomputeApproxDsls or "
          "LoadApproxDsls first");
    }
    return Status::Ok();
  }

  // ---- paranoid_checks hooks (deep validators; see core/validate.h and
  // index/validate.h). Violations abort: never serve a wrong answer. ----

  AnswerValidationInput MakeValidationInput() const {
    AnswerValidationInput in;
    in.products_tree = tree.get();
    in.customers = &customer_dataset().points;
    in.shared_relation = shared_relation;
    in.epsilon_fraction = options.epsilon_fraction;
    in.universe = universe;
    in.cost_model = &cost_model;
    return in;
  }

  /// Structural validation of the index state: dynamic tree invariants
  /// plus packed-image parity. Called at construction and after every
  /// mutation when paranoid_checks is on.
  void ParanoidCheckIndex() const {
    if (!options.paranoid_checks) return;
    Status s = ValidateTree(*tree);
    WNRS_CHECK(s.ok()) << "paranoid product tree: " << s.ToString();
    if (customer_tree != nullptr) {
      s = ValidateTree(*customer_tree);
      WNRS_CHECK(s.ok()) << "paranoid customer tree: " << s.ToString();
    }
    if (packed_tree != nullptr) {
      s = ValidatePacked(*packed_tree);
      WNRS_CHECK(s.ok()) << "paranoid packed tree: " << s.ToString();
      s = ValidatePackedMatchesDynamic(*packed_tree, *tree);
      WNRS_CHECK(s.ok()) << "paranoid packed parity: " << s.ToString();
    }
    if (packed_customer_tree != nullptr) {
      s = ValidatePackedMatchesDynamic(*packed_customer_tree, *customer_tree);
      WNRS_CHECK(s.ok()) << "paranoid packed customer parity: "
                         << s.ToString();
    }
  }

  // ---- Read path. All const; results are bit-identical regardless of
  // thread count or cache state. ----

  /// Window-emptiness probe against the product set (the reverse-skyline
  /// membership test), served by the packed read path when available.
  bool ProductWindowEmpty(const Point& c, const Point& q,
                          std::optional<RStarTree::Id> exclude) const {
    return packed_tree != nullptr ? WindowEmpty(*packed_tree, c, q, exclude)
                                  : WindowEmpty(*tree, c, q, exclude);
  }

  /// Window hit set Λ(c, q) as ascending product ids (packed dispatch).
  std::vector<RStarTree::Id> ProductWindowHits(
      const Point& c, const Point& q,
      std::optional<RStarTree::Id> exclude) const {
    return packed_tree != nullptr ? WindowQuery(*packed_tree, c, q, exclude)
                                  : WindowQuery(*tree, c, q, exclude);
  }

  /// Window skyline of (c, q) in `origin`'s distance space, ascending ids.
  std::vector<RStarTree::Id> ProductWindowFrontier(
      const Point& c, const Point& q, const Point& origin,
      std::optional<RStarTree::Id> exclude) const {
    return packed_tree != nullptr
               ? WindowSkyline(*packed_tree, c, q, origin, exclude)
               : WindowSkyline(*tree, c, q, origin, exclude);
  }

  /// DSL(c) over the product index (BBS traversal order; duplicates of a
  /// skyline point are all reported).
  std::vector<RStarTree::Id> ProductDynamicSkyline(
      const Point& c, std::optional<RStarTree::Id> exclude) const {
    return packed_tree != nullptr ? BbsDynamicSkyline(*packed_tree, c, exclude)
                                  : BbsDynamicSkyline(*tree, c, exclude);
  }

  std::vector<RStarTree::Id> ProductGlobalSkylineCandidates(
      const Point& q, std::optional<RStarTree::Id> exclude) const {
    return packed_tree != nullptr
               ? GlobalSkylineCandidates(*packed_tree, q, exclude)
               : GlobalSkylineCandidates(*tree, q, exclude);
  }

  /// The probe NudgeToStrictMember and the strict post-passes run on,
  /// with customer `c`'s own-tuple exclusion bound in.
  StrictWindowEmptyFn StrictProbeFor(size_t c) const {
    return [this, c](const Point& cc, const Point& qq) {
      return ProductWindowEmpty(cc, qq, ExcludeFor(c));
    };
  }

  std::vector<size_t> ComputeReverseSkyline(const Point& q) const {
    std::vector<RStarTree::Id> ids;
    if (shared_relation) {
      ids = packed_tree != nullptr
                ? BbrsReverseSkyline(*packed_tree, q, pool.get())
                : BbrsReverseSkyline(*tree, q, pool.get());
    } else if (packed_tree != nullptr) {
      ids = BbrsReverseSkylineBichromatic(*packed_customer_tree, *packed_tree,
                                          q, /*shared_relation=*/false,
                                          pool.get());
    } else {
      ids = BbrsReverseSkylineBichromatic(*customer_tree, *tree, q,
                                          /*shared_relation=*/false,
                                          pool.get());
    }
    std::vector<size_t> out;
    out.reserve(ids.size());
    for (RStarTree::Id id : ids) out.push_back(static_cast<size_t>(id));
    return out;
  }

  std::vector<size_t> ReverseSkyline(const Point& q) const {
    {
      MutexLock lock(rsl_mu);
      for (const auto& [key, rsl] : rsl_memo) {
        if (key == q) {
          MetricAdd(CounterId::kRslCacheHits);
          return rsl;
        }
      }
    }
    MetricAdd(CounterId::kRslCacheMisses);
    // Compute outside the lock; concurrent misses for the same q may both
    // compute, but the results are identical and the first insert wins.
    std::vector<size_t> out = ComputeReverseSkyline(q);
    MutexLock lock(rsl_mu);
    for (const auto& [key, rsl] : rsl_memo) {
      if (key == q) return rsl;
    }
    if (rsl_memo.size() >= kRslCacheCapacity) {
      rsl_memo.erase(rsl_memo.begin());
      MetricAdd(CounterId::kRslCacheEvictions);
    }
    rsl_memo.emplace_back(q, out);
    MetricSetGauge(GaugeId::kRslCacheSize,
                   static_cast<int64_t>(rsl_memo.size()));
    return out;
  }

  bool IsReverseSkylineMember(size_t c, const Point& q) const {
    return ProductWindowEmpty(CustomerPoint(c), q, ExcludeFor(c));
  }

  std::vector<size_t> CustomersInRange(const Rectangle& window) const {
    // Both RangeQueryIds implementations return ascending ids.
    std::vector<RStarTree::Id> ids;
    if (packed_tree != nullptr) {
      const PackedRTree& t =
          shared_relation ? *packed_tree : *packed_customer_tree;
      ids = t.RangeQueryIds(window);
    } else {
      const RStarTree& t = shared_relation ? *tree : *customer_tree;
      ids = t.RangeQueryIds(window);
    }
    std::vector<size_t> out;
    out.reserve(ids.size());
    for (RStarTree::Id id : ids) out.push_back(static_cast<size_t>(id));
    return out;
  }

  WhyNotExplanation Explain(size_t c, const Point& q) const {
    return ExplainWhyNot(*tree, products->points, CustomerPoint(c), q,
                         ExcludeFor(c));
  }

  std::optional<Point> NudgeToStrictMember(const Point& c_star, const Point& q,
                                           size_t customer_index) const {
    return NudgeToStrictMemberImpl(c_star, q, universe,
                                   options.epsilon_fraction,
                                   StrictProbeFor(customer_index));
  }

  /// The query-side twin of NudgeToStrictMember: moves q* epsilon toward
  /// the customer per dimension (shrinking the membership window) until
  /// c_t is a strict member under the nudged query.
  std::optional<Point> NudgeQueryToStrict(const Point& q_star,
                                          size_t customer_index) const {
    return NudgeQueryToStrictImpl(q_star, CustomerPoint(customer_index),
                                  universe, options.epsilon_fraction,
                                  StrictProbeFor(customer_index));
  }

  // Semantics::kStrict post-passes (core/strict.h), bound to this core's
  // window probe and cost model.

  void ApplyStrictMwp(size_t c, const Point& q, MwpResult* r) const {
    ApplyStrictMwpImpl(CustomerPoint(c), q, cost_model, universe,
                       options.epsilon_fraction, StrictProbeFor(c), r);
  }

  void ApplyStrictMqp(size_t c, const Point& q, MqpResult* r) const {
    ApplyStrictMqpImpl(CustomerPoint(c), q, cost_model, universe,
                       options.epsilon_fraction, StrictProbeFor(c), r);
  }

  void ApplyStrictMwq(size_t c, MwqResult* r) const {
    ApplyStrictMwqImpl(CustomerPoint(c), cost_model, universe,
                       options.epsilon_fraction, StrictProbeFor(c), r);
  }

  MwpResult ModifyWhyNot(size_t c, const Point& q, Semantics semantics) const {
    MwpResult out =
        options.fast_frontier
            ? ModifyWhyNotPointFast(*tree, products->points, CustomerPoint(c),
                                    q, cost_model, options.sort_dim,
                                    ExcludeFor(c))
            : ModifyWhyNotPoint(*tree, products->points, CustomerPoint(c), q,
                                cost_model, options.sort_dim, ExcludeFor(c));
    if (semantics == Semantics::kStrict) ApplyStrictMwp(c, q, &out);
    if (options.paranoid_checks) {
      const Status s = ValidateMwpAnswer(MakeValidationInput(), c, q, out);
      WNRS_CHECK(s.ok()) << "paranoid MWP answer: " << s.ToString();
    }
    return out;
  }

  MqpResult ModifyQuery(size_t c, const Point& q, Semantics semantics) const {
    MqpResult out =
        options.fast_frontier
            ? ModifyQueryPointFast(*tree, products->points, CustomerPoint(c),
                                   q, cost_model, options.sort_dim,
                                   ExcludeFor(c))
            : ModifyQueryPoint(*tree, products->points, CustomerPoint(c), q,
                               cost_model, options.sort_dim, ExcludeFor(c));
    if (semantics == Semantics::kStrict) ApplyStrictMqp(c, q, &out);
    if (options.paranoid_checks) {
      const Status s = ValidateMqpAnswer(MakeValidationInput(), c, q, out);
      WNRS_CHECK(s.ok()) << "paranoid MQP answer: " << s.ToString();
    }
    return out;
  }

  std::shared_ptr<const SafeRegionResult> SafeRegion(const Point& q) const {
    {
      MutexLock lock(sr_mu);
      for (const auto& [key, sr] : sr_cache) {
        if (key == q) return sr;
      }
    }
    SafeRegionOptions sr_options;
    sr_options.sort_dim = options.sort_dim;
    sr_options.max_rectangles = options.max_safe_region_rectangles;
    const std::vector<size_t> rsl = ReverseSkyline(q);
    auto computed = std::make_shared<const SafeRegionResult>(
        ComputeSafeRegion(*tree, products->points, customer_dataset().points,
                          rsl, q, universe, shared_relation, sr_options));
    if (options.paranoid_checks) {
      const Status s =
          ValidateSafeRegion(MakeValidationInput(), rsl, q, *computed);
      WNRS_CHECK(s.ok()) << "paranoid safe region: " << s.ToString();
    }
    MutexLock lock(sr_mu);
    for (const auto& [key, sr] : sr_cache) {
      if (key == q) return sr;
    }
    if (sr_cache.size() >= kSrCacheCapacity) {
      sr_cache.erase(sr_cache.begin());
    }
    sr_cache.emplace_back(q, computed);
    return computed;
  }

  std::shared_ptr<const SafeRegionResult> ApproxSafeRegion(
      const Point& q) const {
    WNRS_CHECK(HasApproxDsls());
    {
      MutexLock lock(approx_sr_mu);
      for (const auto& [key, sr] : approx_sr_cache) {
        if (key == q) return sr;
      }
    }
    SafeRegionOptions sr_options;
    sr_options.sort_dim = options.sort_dim;
    sr_options.max_rectangles = options.max_safe_region_rectangles;
    const std::vector<size_t> rsl = ReverseSkyline(q);
    auto computed = std::make_shared<const SafeRegionResult>(
        ComputeApproxSafeRegion(customer_dataset().points, *approx_dsls, rsl,
                                q, universe, sr_options));
    if (options.paranoid_checks) {
      // The approximated region must be sound too — it is a subset of the
      // exact safe region by construction, so the same sampled probes
      // apply unchanged.
      const Status s =
          ValidateSafeRegion(MakeValidationInput(), rsl, q, *computed);
      WNRS_CHECK(s.ok()) << "paranoid approx safe region: " << s.ToString();
    }
    MutexLock lock(approx_sr_mu);
    for (const auto& [key, sr] : approx_sr_cache) {
      if (key == q) return sr;
    }
    if (approx_sr_cache.size() >= kSrCacheCapacity) {
      approx_sr_cache.erase(approx_sr_cache.begin());
    }
    approx_sr_cache.emplace_back(q, computed);
    return computed;
  }

  SafeRegionResult ConstrainedSafeRegion(const Point& q,
                                         const Rectangle& limits) const {
    WNRS_CHECK(limits.dims() == q.dims());
    SafeRegionResult out = *SafeRegion(q);
    out.region.ClipTo(limits);
    if (!out.region.Contains(q)) {
      out.region.Add(Rectangle::FromPoint(q));
    }
    return out;
  }

  KeepsMembersFn MakeKeepsMembersFn(const Point& q) const {
    std::vector<size_t> rsl = ReverseSkyline(q);
    return [this, rsl = std::move(rsl)](const Point& q_star) {
      // One independent membership probe per RSL member. Inside an outer
      // parallel loop (batch answering) this degrades to the serial scan.
      std::atomic<bool> keeps{true};
      pool->ParallelFor(0, rsl.size(), [&](size_t i) {
        if (!keeps.load(std::memory_order_relaxed)) return;
        if (!ProductWindowEmpty(CustomerPoint(rsl[i]), q_star,
                                ExcludeFor(rsl[i]))) {
          keeps.store(false, std::memory_order_relaxed);
        }
      });
      return keeps.load(std::memory_order_relaxed);
    };
  }

  /// MWQ results are re-proved against RSL(q) (cached) when paranoid.
  void ParanoidCheckMwq(size_t c, const Point& q, const MwqResult& out) const {
    if (!options.paranoid_checks) return;
    const Status s =
        ValidateMwqAnswer(MakeValidationInput(), c, q, ReverseSkyline(q), out);
    WNRS_CHECK(s.ok()) << "paranoid MWQ answer: " << s.ToString();
  }

  MwqResult ModifyBoth(size_t c, const Point& q, Semantics semantics) const {
    std::shared_ptr<const SafeRegionResult> sr = SafeRegion(q);
    MwqResult out = ModifyQueryAndWhyNotPoint(
        *tree, products->points, CustomerPoint(c), q, sr->region, universe,
        cost_model, options.sort_dim, ExcludeFor(c), MakeKeepsMembersFn(q),
        options.fast_frontier);
    if (semantics == Semantics::kStrict) ApplyStrictMwq(c, &out);
    ParanoidCheckMwq(c, q, out);
    return out;
  }

  MwqResult ModifyBothApprox(size_t c, const Point& q,
                             Semantics semantics) const {
    std::shared_ptr<const SafeRegionResult> sr = ApproxSafeRegion(q);
    MwqResult out = ModifyQueryAndWhyNotPoint(
        *tree, products->points, CustomerPoint(c), q, sr->region, universe,
        cost_model, options.sort_dim, ExcludeFor(c), MakeKeepsMembersFn(q),
        options.fast_frontier);
    if (semantics == Semantics::kStrict) ApplyStrictMwq(c, &out);
    ParanoidCheckMwq(c, q, out);
    return out;
  }

  MwqResult ModifyBothConstrained(size_t c, const Point& q,
                                  const Rectangle& limits,
                                  Semantics semantics) const {
    const SafeRegionResult sr = ConstrainedSafeRegion(q, limits);
    MwqResult out = ModifyQueryAndWhyNotPoint(
        *tree, products->points, CustomerPoint(c), q, sr.region, universe,
        cost_model, options.sort_dim, ExcludeFor(c), MakeKeepsMembersFn(q),
        options.fast_frontier);
    if (semantics == Semantics::kStrict) ApplyStrictMwq(c, &out);
    ParanoidCheckMwq(c, q, out);
    return out;
  }

  std::vector<size_t> LostCustomers(const Point& q, const Point& q_star) const {
    const std::vector<size_t> members = ReverseSkyline(q);
    const std::vector<unsigned char> is_lost =
        pool->ParallelMap<unsigned char>(members.size(), [&](size_t i) {
          return ProductWindowEmpty(CustomerPoint(members[i]), q_star,
                                    ExcludeFor(members[i]))
                     ? static_cast<unsigned char>(0)
                     : static_cast<unsigned char>(1);
        });
    std::vector<size_t> lost;
    for (size_t i = 0; i < members.size(); ++i) {
      if (is_lost[i] != 0) lost.push_back(members[i]);
    }
    return lost;
  }

  std::vector<MwqResult> ModifyBothBatch(const std::vector<size_t>& whos,
                                         const Point& q, bool use_approx,
                                         Semantics semantics) const {
    // Materialize the safe region and RSL(q) once, before fanning out.
    // The caches are synchronized, so this is a performance (and counter
    // determinism) measure, not a safety one: without it every worker
    // missing the cold cache would redundantly compute the same region.
    if (use_approx) {
      // wnrs-lint: allow-discard(cache prewarm; workers re-read the value)
      (void)ApproxSafeRegion(q);
    } else {
      // wnrs-lint: allow-discard(cache prewarm; workers re-read the value)
      (void)SafeRegion(q);
    }
    // wnrs-lint: allow-discard(cache prewarm; workers re-read the value)
    (void)ReverseSkyline(q);
    return pool->ParallelMap<MwqResult>(whos.size(), [&](size_t i) {
      return use_approx ? ModifyBothApprox(whos[i], q, semantics)
                        : ModifyBoth(whos[i], q, semantics);
    });
  }

  double MqpEvaluationCost(const Point& q, const Point& q_star) const {
    // alpha-cost of leaving the safe region: distance from the closest
    // safe point q' to q*.
    std::shared_ptr<const SafeRegionResult> sr = SafeRegion(q);
    double cost = 0.0;
    if (!sr->region.empty()) {
      const Point q_prime = sr->region.NearestPointTo(q_star);
      cost += cost_model.QueryMoveCost(q_prime, q_star);
    } else {
      cost += cost_model.QueryMoveCost(q, q_star);
    }
    // beta-cost of winning back every lost reverse-skyline customer. The
    // per-member costs are computed in parallel but summed in member
    // order, keeping the total bit-identical to the serial loop.
    const std::vector<size_t> rsl = ReverseSkyline(q);
    const std::vector<double> win_back =
        pool->ParallelMap<double>(rsl.size(), [&](size_t i) {
          const size_t c = rsl[i];
          if (IsReverseSkylineMember(c, q_star)) return 0.0;
          const MwpResult mwp = ModifyWhyNot(c, q_star, Semantics::kBoundary);
          return mwp.candidates.empty() ? 0.0 : mwp.candidates.front().cost;
        });
    for (double v : win_back) cost += v;
    return cost;
  }
};

}  // namespace internal

/// Snapshot-delta scope. The constructor captures the registry at entry
/// of the outermost public call; the destructor captures again and books
/// the difference into the engine's cumulative and last-call stats. The
/// depth counter is engine-wide (not thread-local), so with overlapping
/// concurrent calls the first one in attributes the whole window — the
/// cumulative totals stay exact, per-call attribution becomes aggregate.
class WhyNotEngine::StatsScope {
 public:
  explicit StatsScope(const WhyNotEngine* engine) : engine_(engine) {
    outermost_ =
        engine_->stats_depth_.fetch_add(1, std::memory_order_relaxed) == 0;
    if (outermost_) {
      start_ = MetricsRegistry::Default().CaptureQueryStats();
      start_time_ = std::chrono::steady_clock::now();
    }
  }

  StatsScope(const StatsScope&) = delete;
  StatsScope& operator=(const StatsScope&) = delete;

  ~StatsScope() {
    if (outermost_) {
      QueryStats delta =
          MetricsRegistry::Default().CaptureQueryStats() - start_;
      delta.engine_queries = 1;
      MetricAdd(CounterId::kEngineQueries);
      MetricRecord(
          HistogramId::kEngineQueryMicros,
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start_time_)
                  .count()));
      MutexLock lock(engine_->stats_mu_);
      engine_->last_query_stats_ = delta;
      engine_->cum_stats_ += delta;
    }
    engine_->stats_depth_.fetch_sub(1, std::memory_order_relaxed);
  }

 private:
  const WhyNotEngine* engine_;
  bool outermost_ = false;
  QueryStats start_;
  std::chrono::steady_clock::time_point start_time_;
};

// ---------------------------------------------------------------------------
// EngineSnapshot: thin const delegation onto the pinned core.
// ---------------------------------------------------------------------------

const Dataset& EngineSnapshot::products() const { return *core_->products; }
const Dataset& EngineSnapshot::customers() const {
  return core_->customer_dataset();
}
bool EngineSnapshot::shared_relation() const { return core_->shared_relation; }
const CostModel& EngineSnapshot::cost_model() const {
  return core_->cost_model;
}
const RStarTree& EngineSnapshot::product_tree() const { return *core_->tree; }
const Rectangle& EngineSnapshot::universe() const { return core_->universe; }
bool EngineSnapshot::HasApproxDsls() const { return core_->HasApproxDsls(); }
size_t EngineSnapshot::approx_k() const { return core_->approx_k; }

bool EngineSnapshot::IsLiveProduct(size_t id) const {
  if (id >= core_->products->points.size()) return false;
  return id >= core_->removed.size() || !core_->removed[id];
}

std::vector<size_t> EngineSnapshot::ReverseSkyline(const Point& q) const {
  return core_->ReverseSkyline(q);
}
bool EngineSnapshot::IsReverseSkylineMember(size_t c, const Point& q) const {
  return core_->IsReverseSkylineMember(c, q);
}
std::vector<size_t> EngineSnapshot::CustomersInRange(
    const Rectangle& window) const {
  return core_->CustomersInRange(window);
}
WhyNotExplanation EngineSnapshot::Explain(size_t c, const Point& q) const {
  return core_->Explain(c, q);
}
MwpResult EngineSnapshot::ModifyWhyNot(size_t c, const Point& q,
                                       Semantics semantics) const {
  return core_->ModifyWhyNot(c, q, semantics);
}
MqpResult EngineSnapshot::ModifyQuery(size_t c, const Point& q,
                                      Semantics semantics) const {
  return core_->ModifyQuery(c, q, semantics);
}
std::shared_ptr<const SafeRegionResult> EngineSnapshot::SafeRegion(
    const Point& q) const {
  return core_->SafeRegion(q);
}
std::shared_ptr<const SafeRegionResult> EngineSnapshot::ApproxSafeRegion(
    const Point& q) const {
  return core_->ApproxSafeRegion(q);
}
SafeRegionResult EngineSnapshot::ConstrainedSafeRegion(
    const Point& q, const Rectangle& limits) const {
  return core_->ConstrainedSafeRegion(q, limits);
}
MwqResult EngineSnapshot::ModifyBoth(size_t c, const Point& q,
                                     Semantics semantics) const {
  return core_->ModifyBoth(c, q, semantics);
}
MwqResult EngineSnapshot::ModifyBothApprox(size_t c, const Point& q,
                                           Semantics semantics) const {
  return core_->ModifyBothApprox(c, q, semantics);
}
MwqResult EngineSnapshot::ModifyBothConstrained(size_t c, const Point& q,
                                                const Rectangle& limits,
                                                Semantics semantics) const {
  return core_->ModifyBothConstrained(c, q, limits, semantics);
}
std::vector<size_t> EngineSnapshot::LostCustomers(const Point& q,
                                                  const Point& q_star) const {
  return core_->LostCustomers(q, q_star);
}
std::vector<MwqResult> EngineSnapshot::ModifyBothBatch(
    const std::vector<size_t>& whos, const Point& q, bool use_approx,
    Semantics semantics) const {
  return core_->ModifyBothBatch(whos, q, use_approx, semantics);
}
double EngineSnapshot::MqpEvaluationCost(const Point& q,
                                         const Point& q_star) const {
  return core_->MqpEvaluationCost(q, q_star);
}
std::optional<Point> EngineSnapshot::NudgeToStrictMember(
    const Point& c_star, const Point& q, size_t customer_index) const {
  return core_->NudgeToStrictMember(c_star, q, customer_index);
}
bool EngineSnapshot::ProbeWindowEmpty(
    const Point& c, const Point& q,
    std::optional<RStarTree::Id> exclude) const {
  return core_->ProductWindowEmpty(c, q, exclude);
}
std::vector<RStarTree::Id> EngineSnapshot::ProbeWindowHits(
    const Point& c, const Point& q,
    std::optional<RStarTree::Id> exclude) const {
  return core_->ProductWindowHits(c, q, exclude);
}
std::vector<RStarTree::Id> EngineSnapshot::ProbeWindowFrontier(
    const Point& c, const Point& q, const Point& origin,
    std::optional<RStarTree::Id> exclude) const {
  return core_->ProductWindowFrontier(c, q, origin, exclude);
}
std::vector<RStarTree::Id> EngineSnapshot::ProbeDynamicSkyline(
    const Point& c, std::optional<RStarTree::Id> exclude) const {
  return core_->ProductDynamicSkyline(c, exclude);
}
std::vector<RStarTree::Id> EngineSnapshot::ProbeGlobalSkylineCandidates(
    const Point& q, std::optional<RStarTree::Id> exclude) const {
  return core_->ProductGlobalSkylineCandidates(q, exclude);
}

Result<std::vector<size_t>> EngineSnapshot::TryReverseSkyline(
    const Point& q) const {
  WNRS_RETURN_IF_ERROR(core_->ValidateQuery(q));
  return core_->ReverseSkyline(q);
}
Result<WhyNotExplanation> EngineSnapshot::TryExplain(size_t c,
                                                     const Point& q) const {
  WNRS_RETURN_IF_ERROR(core_->ValidateQuery(q));
  WNRS_RETURN_IF_ERROR(core_->ValidateCustomer(c));
  return core_->Explain(c, q);
}
Result<MwpResult> EngineSnapshot::TryModifyWhyNot(size_t c, const Point& q,
                                                  Semantics semantics) const {
  WNRS_RETURN_IF_ERROR(core_->ValidateQuery(q));
  WNRS_RETURN_IF_ERROR(core_->ValidateCustomer(c));
  return core_->ModifyWhyNot(c, q, semantics);
}
Result<MqpResult> EngineSnapshot::TryModifyQuery(size_t c, const Point& q,
                                                 Semantics semantics) const {
  WNRS_RETURN_IF_ERROR(core_->ValidateQuery(q));
  WNRS_RETURN_IF_ERROR(core_->ValidateCustomer(c));
  return core_->ModifyQuery(c, q, semantics);
}
Result<std::shared_ptr<const SafeRegionResult>> EngineSnapshot::TrySafeRegion(
    const Point& q) const {
  WNRS_RETURN_IF_ERROR(core_->ValidateQuery(q));
  return core_->SafeRegion(q);
}
Result<std::shared_ptr<const SafeRegionResult>>
EngineSnapshot::TryApproxSafeRegion(const Point& q) const {
  WNRS_RETURN_IF_ERROR(core_->ValidateQuery(q));
  WNRS_RETURN_IF_ERROR(core_->ValidateApproxStore());
  return core_->ApproxSafeRegion(q);
}
Result<MwqResult> EngineSnapshot::TryModifyBoth(size_t c, const Point& q,
                                                Semantics semantics) const {
  WNRS_RETURN_IF_ERROR(core_->ValidateQuery(q));
  WNRS_RETURN_IF_ERROR(core_->ValidateCustomer(c));
  return core_->ModifyBoth(c, q, semantics);
}
Result<MwqResult> EngineSnapshot::TryModifyBothApprox(
    size_t c, const Point& q, Semantics semantics) const {
  WNRS_RETURN_IF_ERROR(core_->ValidateQuery(q));
  WNRS_RETURN_IF_ERROR(core_->ValidateCustomer(c));
  WNRS_RETURN_IF_ERROR(core_->ValidateApproxStore());
  return core_->ModifyBothApprox(c, q, semantics);
}
Result<std::vector<MwqResult>> EngineSnapshot::TryModifyBothBatch(
    const std::vector<size_t>& whos, const Point& q, bool use_approx,
    Semantics semantics) const {
  WNRS_RETURN_IF_ERROR(core_->ValidateQuery(q));
  for (size_t c : whos) {
    WNRS_RETURN_IF_ERROR(core_->ValidateCustomer(c));
  }
  if (use_approx) {
    WNRS_RETURN_IF_ERROR(core_->ValidateApproxStore());
  }
  return core_->ModifyBothBatch(whos, q, use_approx, semantics);
}

// ---------------------------------------------------------------------------
// WhyNotEngine: snapshot management + the stats-keeping serial facade.
// ---------------------------------------------------------------------------

WhyNotEngine::WhyNotEngine(Dataset products, Dataset customers,
                           WhyNotEngineOptions options)
    : pool_(std::make_shared<ThreadPool>(options.num_threads)),
      core_(std::make_shared<const internal::EngineCore>(
          std::move(products), std::move(customers), options, pool_)) {}

WhyNotEngine::WhyNotEngine(Dataset data, WhyNotEngineOptions options)
    : pool_(std::make_shared<ThreadPool>(options.num_threads)),
      core_(std::make_shared<const internal::EngineCore>(std::move(data),
                                                         options, pool_)) {}

WhyNotEngine::WhyNotEngine(RestoreBadge, std::shared_ptr<ThreadPool> pool,
                           std::shared_ptr<const internal::EngineCore> core)
    : pool_(std::move(pool)), core_(std::move(core)) {}

// ---------------------------------------------------------------------------
// Persistence: the engine bundle (DESIGN.md §13). data.bin holds the
// datasets/tombstones/universe; the dynamic trees become page files; the
// packed slab keeps its mmap-able image alongside.
// ---------------------------------------------------------------------------

Status WhyNotEngine::Save(const std::string& dir) const {
  std::shared_ptr<const internal::EngineCore> cur = CurrentCore();
  WNRS_RETURN_IF_ERROR(storage::EnsureDirectory(dir));
  const std::string base = dir + "/";

  storage::EngineBundleData data;
  data.shared_relation = cur->shared_relation;
  data.products = *cur->products;
  if (cur->customers != nullptr) {
    data.customers = *cur->customers;
    data.has_customers = true;
  }
  data.removed = cur->removed;
  data.universe = cur->universe;
  data.has_packed = cur->packed_tree != nullptr;
  data.has_packed_customers = cur->packed_customer_tree != nullptr;
  WNRS_RETURN_IF_ERROR(
      storage::SaveBundleData(data, base + storage::kBundleDataFile));

  WNRS_RETURN_IF_ERROR(
      storage::SavePagedTree(*cur->tree, base + storage::kBundleTreeFile));
  if (cur->customer_tree != nullptr) {
    WNRS_RETURN_IF_ERROR(storage::SavePagedTree(
        *cur->customer_tree, base + storage::kBundleCustomerTreeFile));
  }
  if (cur->packed_tree != nullptr) {
    WNRS_RETURN_IF_ERROR(storage::SavePacked(
        *cur->packed_tree, base + storage::kBundlePackedFile));
  }
  if (cur->packed_customer_tree != nullptr) {
    WNRS_RETURN_IF_ERROR(storage::SavePacked(
        *cur->packed_customer_tree,
        base + storage::kBundlePackedCustomerFile));
  }
  return Status::Ok();
}

namespace {

/// Opens the packed slab for one tree, or re-freezes it from the loaded
/// dynamic tree when the bundle has none, and proves slab/tree parity
/// either way — a slab from a different tree state must never serve.
Result<std::shared_ptr<const PackedRTree>> RestorePacked(
    const std::string& slab_path, bool slab_on_disk, const RStarTree& tree,
    const EngineStorageOptions& storage_options) {
  if (!slab_on_disk) {
    return std::shared_ptr<const PackedRTree>(
        std::make_shared<const PackedRTree>(PackedRTree::Freeze(tree)));
  }
  Result<PackedRTree> packed =
      storage_options.mmap_packed
          ? storage::OpenPackedMapped(slab_path,
                                      storage_options.verify_checksums)
          : storage::OpenPackedBuffered(slab_path,
                                        storage_options.verify_checksums);
  WNRS_RETURN_IF_ERROR(packed.status());
  WNRS_RETURN_IF_ERROR(
      ValidatePackedMatchesDynamic(packed.value(), tree));
  return std::shared_ptr<const PackedRTree>(
      std::make_shared<const PackedRTree>(std::move(packed).value()));
}

}  // namespace

Result<std::unique_ptr<WhyNotEngine>> WhyNotEngine::Open(
    const std::string& dir, WhyNotEngineOptions options) {
  const std::string base = dir + "/";
  Result<storage::EngineBundleData> data_r =
      storage::LoadBundleData(base + storage::kBundleDataFile);
  WNRS_RETURN_IF_ERROR(data_r.status());
  storage::EngineBundleData& data = data_r.value();

  internal::RestoredEngineParts parts;
  parts.options = options;
  parts.shared_relation = data.shared_relation;
  parts.removed = std::move(data.removed);
  parts.universe = data.universe;
  const size_t dims = data.products.dims;
  size_t live = data.products.points.size();
  for (bool r : parts.removed) {
    if (r) --live;
  }
  if (live == 0) {
    return Status::InvalidArgument(
        "[tree-shape] bundle has no live products: " + dir);
  }
  parts.products =
      std::make_shared<const Dataset>(std::move(data.products));
  if (data.has_customers) {
    if (data.customers.dims != dims || data.customers.points.empty()) {
      return Status::InvalidArgument(
          "[dimension] bundle customer dataset inconsistent with "
          "products: " +
          dir);
    }
    parts.customers =
        std::make_shared<const Dataset>(std::move(data.customers));
  } else if (!data.shared_relation) {
    return Status::InvalidArgument(
        "[bundle-flags] bichromatic bundle without a customer dataset: " +
        dir);
  }
  if (parts.universe.dims() != dims) {
    return Status::InvalidArgument(
        "[dimension] bundle universe dimensionality mismatch: " + dir);
  }

  Result<RStarTree> tree_r = storage::LoadPagedTree(
      base + storage::kBundleTreeFile, options.storage.buffer_pool_pages);
  WNRS_RETURN_IF_ERROR(tree_r.status());
  if (tree_r.value().dims() != dims || tree_r.value().size() != live) {
    return Status::InvalidArgument(
        StrFormat("[tree-shape] bundle product tree holds %zu entries of "
                  "%zu dims; bundle data declares %zu live products of %zu "
                  "dims",
                  tree_r.value().size(), tree_r.value().dims(), live, dims));
  }
  parts.tree =
      std::make_shared<const RStarTree>(std::move(tree_r).value());

  if (parts.customers != nullptr) {
    Result<RStarTree> ctree_r =
        storage::LoadPagedTree(base + storage::kBundleCustomerTreeFile,
                               options.storage.buffer_pool_pages);
    WNRS_RETURN_IF_ERROR(ctree_r.status());
    if (ctree_r.value().dims() != dims ||
        ctree_r.value().size() != parts.customers->points.size()) {
      return Status::InvalidArgument(
          "[tree-shape] bundle customer tree inconsistent with the "
          "customer dataset: " +
          dir);
    }
    parts.customer_tree =
        std::make_shared<const RStarTree>(std::move(ctree_r).value());
  }

  if (options.use_packed_read_path) {
    Result<std::shared_ptr<const PackedRTree>> packed =
        RestorePacked(base + storage::kBundlePackedFile, data.has_packed,
                      *parts.tree, options.storage);
    WNRS_RETURN_IF_ERROR(packed.status());
    parts.packed_tree = std::move(packed).value();
    if (parts.customer_tree != nullptr) {
      Result<std::shared_ptr<const PackedRTree>> packed_c = RestorePacked(
          base + storage::kBundlePackedCustomerFile,
          data.has_packed_customers, *parts.customer_tree, options.storage);
      WNRS_RETURN_IF_ERROR(packed_c.status());
      parts.packed_customer_tree = std::move(packed_c).value();
    }
  }

  auto pool = std::make_shared<ThreadPool>(options.num_threads);
  parts.pool = pool;
  auto core =
      std::make_shared<const internal::EngineCore>(std::move(parts));
  return std::unique_ptr<WhyNotEngine>(std::make_unique<WhyNotEngine>(
      RestoreBadge{}, std::move(pool), std::move(core)));
}

std::shared_ptr<const internal::EngineCore> WhyNotEngine::CurrentCore() const {
  ReaderLock lock(core_mu_);
  return core_;
}

void WhyNotEngine::PublishCore(
    std::shared_ptr<const internal::EngineCore> core) {
  MutexLock lock(core_mu_);
  core_ = std::move(core);
}

const Dataset& WhyNotEngine::products() const {
  return *CurrentCore()->products;
}
const Dataset& WhyNotEngine::customers() const {
  return CurrentCore()->customer_dataset();
}
bool WhyNotEngine::shared_relation() const {
  return CurrentCore()->shared_relation;
}
const CostModel& WhyNotEngine::cost_model() const {
  return CurrentCore()->cost_model;
}
const RStarTree& WhyNotEngine::product_tree() const {
  return *CurrentCore()->tree;
}
const Rectangle& WhyNotEngine::universe() const {
  return CurrentCore()->universe;
}
bool WhyNotEngine::HasApproxDsls() const {
  return CurrentCore()->HasApproxDsls();
}
size_t WhyNotEngine::approx_k() const { return CurrentCore()->approx_k; }

std::vector<size_t> WhyNotEngine::ReverseSkyline(const Point& q) const {
  StatsScope scope(this);
  return CurrentCore()->ReverseSkyline(q);
}

bool WhyNotEngine::IsReverseSkylineMember(size_t c, const Point& q) const {
  return CurrentCore()->IsReverseSkylineMember(c, q);
}

std::vector<size_t> WhyNotEngine::CustomersInRange(
    const Rectangle& window) const {
  return CurrentCore()->CustomersInRange(window);
}

WhyNotExplanation WhyNotEngine::Explain(size_t c, const Point& q) const {
  StatsScope scope(this);
  return CurrentCore()->Explain(c, q);
}

MwpResult WhyNotEngine::ModifyWhyNot(size_t c, const Point& q,
                                     Semantics semantics) const {
  StatsScope scope(this);
  return CurrentCore()->ModifyWhyNot(c, q, semantics);
}

MqpResult WhyNotEngine::ModifyQuery(size_t c, const Point& q,
                                    Semantics semantics) const {
  StatsScope scope(this);
  return CurrentCore()->ModifyQuery(c, q, semantics);
}

const SafeRegionResult& WhyNotEngine::SafeRegion(const Point& q) const {
  StatsScope scope(this);
  tls_sr_anchor = CurrentCore()->SafeRegion(q);
  return *tls_sr_anchor;
}

const SafeRegionResult& WhyNotEngine::ApproxSafeRegion(const Point& q) const {
  StatsScope scope(this);
  tls_approx_sr_anchor = CurrentCore()->ApproxSafeRegion(q);
  return *tls_approx_sr_anchor;
}

MwqResult WhyNotEngine::ModifyBoth(size_t c, const Point& q,
                                   Semantics semantics) const {
  StatsScope scope(this);
  return CurrentCore()->ModifyBoth(c, q, semantics);
}

MwqResult WhyNotEngine::ModifyBothApprox(size_t c, const Point& q,
                                         Semantics semantics) const {
  StatsScope scope(this);
  return CurrentCore()->ModifyBothApprox(c, q, semantics);
}

SafeRegionResult WhyNotEngine::ConstrainedSafeRegion(
    const Point& q, const Rectangle& limits) const {
  StatsScope scope(this);
  return CurrentCore()->ConstrainedSafeRegion(q, limits);
}

MwqResult WhyNotEngine::ModifyBothConstrained(size_t c, const Point& q,
                                              const Rectangle& limits,
                                              Semantics semantics) const {
  StatsScope scope(this);
  return CurrentCore()->ModifyBothConstrained(c, q, limits, semantics);
}

std::vector<size_t> WhyNotEngine::LostCustomers(const Point& q,
                                                const Point& q_star) const {
  StatsScope scope(this);
  return CurrentCore()->LostCustomers(q, q_star);
}

std::vector<MwqResult> WhyNotEngine::ModifyBothBatch(
    const std::vector<size_t>& whos, const Point& q, bool use_approx,
    Semantics semantics) const {
  StatsScope scope(this);
  return CurrentCore()->ModifyBothBatch(whos, q, use_approx, semantics);
}

Result<std::vector<size_t>> WhyNotEngine::TryReverseSkyline(
    const Point& q) const {
  StatsScope scope(this);
  return Snapshot().TryReverseSkyline(q);
}
Result<WhyNotExplanation> WhyNotEngine::TryExplain(size_t c,
                                                   const Point& q) const {
  StatsScope scope(this);
  return Snapshot().TryExplain(c, q);
}
Result<MwpResult> WhyNotEngine::TryModifyWhyNot(size_t c, const Point& q,
                                                Semantics semantics) const {
  StatsScope scope(this);
  return Snapshot().TryModifyWhyNot(c, q, semantics);
}
Result<MqpResult> WhyNotEngine::TryModifyQuery(size_t c, const Point& q,
                                               Semantics semantics) const {
  StatsScope scope(this);
  return Snapshot().TryModifyQuery(c, q, semantics);
}
Result<std::shared_ptr<const SafeRegionResult>> WhyNotEngine::TrySafeRegion(
    const Point& q) const {
  StatsScope scope(this);
  return Snapshot().TrySafeRegion(q);
}
Result<std::shared_ptr<const SafeRegionResult>>
WhyNotEngine::TryApproxSafeRegion(const Point& q) const {
  StatsScope scope(this);
  return Snapshot().TryApproxSafeRegion(q);
}
Result<MwqResult> WhyNotEngine::TryModifyBoth(size_t c, const Point& q,
                                              Semantics semantics) const {
  StatsScope scope(this);
  return Snapshot().TryModifyBoth(c, q, semantics);
}
Result<MwqResult> WhyNotEngine::TryModifyBothApprox(size_t c, const Point& q,
                                                    Semantics semantics) const {
  StatsScope scope(this);
  return Snapshot().TryModifyBothApprox(c, q, semantics);
}
Result<std::vector<MwqResult>> WhyNotEngine::TryModifyBothBatch(
    const std::vector<size_t>& whos, const Point& q, bool use_approx,
    Semantics semantics) const {
  StatsScope scope(this);
  return Snapshot().TryModifyBothBatch(whos, q, use_approx, semantics);
}

void WhyNotEngine::PrecomputeApproxDsls(size_t k) {
  StatsScope scope(this);
  WNRS_CHECK(k >= 2);
  MutexLock mlock(mutation_mu_);
  std::shared_ptr<const internal::EngineCore> cur = CurrentCore();
  const Dataset& ds = cur->customer_dataset();
  auto store =
      std::make_shared<std::vector<std::vector<Point>>>(ds.points.size());
  // One dynamic skyline per customer, each writing its own slot: the
  // embarrassingly parallel offline pass of Section VI-B.1.
  cur->pool->ParallelFor(0, ds.points.size(), [&](size_t c) {
    const std::vector<RStarTree::Id> dsl =
        cur->packed_tree != nullptr
            ? BbsDynamicSkyline(*cur->packed_tree, ds.points[c],
                                cur->ExcludeFor(c))
            : BbsDynamicSkyline(*cur->tree, ds.points[c], cur->ExcludeFor(c));
    std::vector<Point> transformed;
    transformed.reserve(dsl.size());
    for (RStarTree::Id id : dsl) {
      transformed.push_back(ToDistanceSpace(
          cur->products->points[static_cast<size_t>(id)], ds.points[c]));
    }
    (*store)[c] =
        ApproximateSkyline(std::move(transformed), k, cur->options.sort_dim);
  });
  auto next = std::make_shared<internal::EngineCore>(*cur);
  next->approx_dsls = std::move(store);
  next->approx_k = k;
  PublishCore(std::move(next));
}

Status WhyNotEngine::SaveApproxDsls(const std::string& path) const {
  std::shared_ptr<const internal::EngineCore> cur = CurrentCore();
  if (!cur->HasApproxDsls()) {
    return Status::FailedPrecondition("no approximated DSL store to save");
  }
  const size_t dims = cur->products->dims;
  const std::vector<std::vector<Point>>& dsls = *cur->approx_dsls;
  std::ostringstream out;
  out << "wnrs-approx-dsl 1\n"
      << cur->approx_k << ' ' << dims << ' ' << dsls.size() << '\n';
  for (const std::vector<Point>& dsl : dsls) {
    out << dsl.size();
    for (const Point& p : dsl) {
      for (size_t i = 0; i < dims; ++i) {
        out << ' ' << StrFormat("%.17g", p[i]);
      }
    }
    out << '\n';
  }
  return storage::WriteStringToFile(path, out.str());
}

Status WhyNotEngine::LoadApproxDsls(const std::string& path) {
  std::string contents;
  WNRS_RETURN_IF_ERROR(storage::ReadFileToString(path, &contents));
  std::istringstream in(std::move(contents));
  std::string magic;
  int version = 0;
  size_t k = 0;
  size_t dims = 0;
  size_t count = 0;
  in >> magic >> version >> k >> dims >> count;
  if (!in.good() || magic != "wnrs-approx-dsl" || version != 1) {
    return Status::InvalidArgument("not a wnrs approx-DSL store: " + path);
  }
  // PrecomputeApproxDsls enforces k >= 2 (the sampling rule needs a first
  // and a last point); a loaded store must satisfy the same invariant.
  if (k < 2) {
    return Status::InvalidArgument(
        StrFormat("approx-DSL store has k=%zu; k >= 2 required", k));
  }
  MutexLock mlock(mutation_mu_);
  std::shared_ptr<const internal::EngineCore> cur = CurrentCore();
  if (dims != cur->products->dims) {
    return Status::InvalidArgument("store dimensionality mismatch");
  }
  if (count != cur->customer_dataset().points.size()) {
    return Status::InvalidArgument(
        StrFormat("store has %zu customers, engine has %zu", count,
                  cur->customer_dataset().points.size()));
  }
  auto loaded = std::make_shared<std::vector<std::vector<Point>>>(count);
  std::string token;
  for (size_t c = 0; c < count; ++c) {
    size_t entries = 0;
    if (!(in >> entries)) {
      return Status::InvalidArgument("truncated approx-DSL store: " + path);
    }
    (*loaded)[c].reserve(entries);
    for (size_t e = 0; e < entries; ++e) {
      Point p(dims);
      for (size_t i = 0; i < dims; ++i) {
        // Parse via strtod (istream extraction rejects "nan"/"inf"
        // outright, which would misreport them as truncation).
        if (!(in >> token)) {
          return Status::InvalidArgument("truncated approx-DSL store: " +
                                         path);
        }
        char* end_ptr = nullptr;
        const double v = std::strtod(token.c_str(), &end_ptr);
        if (end_ptr == token.c_str() || *end_ptr != '\0') {
          return Status::InvalidArgument("malformed coordinate '" + token +
                                         "' in approx-DSL store: " + path);
        }
        if (!std::isfinite(v)) {
          return Status::InvalidArgument(
              "non-finite coordinate in approx-DSL store: " + path);
        }
        p[i] = v;
      }
      (*loaded)[c].push_back(std::move(p));
    }
  }
  auto next = std::make_shared<internal::EngineCore>(*cur);
  next->approx_dsls = std::move(loaded);
  next->approx_k = k;
  PublishCore(std::move(next));
  return Status::Ok();
}

size_t WhyNotEngine::AddProduct(const Point& p) {
  MutexLock mlock(mutation_mu_);
  std::shared_ptr<const internal::EngineCore> cur = CurrentCore();
  WNRS_CHECK(p.dims() == cur->products->dims);
  auto new_products = std::make_shared<Dataset>(*cur->products);
  const size_t id = new_products->points.size();
  new_products->points.push_back(p);
  auto new_tree = std::make_shared<RStarTree>(cur->tree->Clone());
  new_tree->Insert(p, static_cast<RStarTree::Id>(id));
  auto next = std::make_shared<internal::EngineCore>(*cur);
  next->products = std::move(new_products);
  next->tree = std::move(new_tree);
  if (next->options.use_packed_read_path) {
    next->packed_tree = std::make_shared<const PackedRTree>(
        PackedRTree::Freeze(*next->tree));
  }
  next->removed.resize(id + 1, false);
  // Keep the universe a superset of all live points; the cost model's
  // normalization follows it when the new tuple falls outside.
  if (!next->universe.Contains(p)) {
    next->universe = next->universe.BoundingUnion(Rectangle::FromPoint(p));
    next->cost_model = MakeCostModel(next->universe, next->options);
  }
  // The approximated-DSL store is a function of the product set; a stale
  // store could silently lose safety, so it is dropped with the snapshot.
  next->approx_dsls.reset();
  next->approx_k = 0;
  next->ParanoidCheckIndex();
  PublishCore(std::move(next));
  MetricSetGauge(GaugeId::kRslCacheSize, 0);
  return id;
}

Result<size_t> WhyNotEngine::TryAddProduct(const Point& p) {
  {
    std::shared_ptr<const internal::EngineCore> cur = CurrentCore();
    WNRS_RETURN_IF_ERROR(cur->ValidatePoint(p, "product point"));
  }
  return AddProduct(p);
}

bool WhyNotEngine::RemoveProduct(size_t id) {
  return TryRemoveProduct(id).ok();
}

Status WhyNotEngine::TryRemoveProduct(size_t id) {
  MutexLock mlock(mutation_mu_);
  std::shared_ptr<const internal::EngineCore> cur = CurrentCore();
  if (id >= cur->products->points.size()) {
    return Status::NotFound(StrFormat("no product with id %zu", id));
  }
  if (id < cur->removed.size() && cur->removed[id]) {
    return Status::NotFound(StrFormat("product %zu was already removed", id));
  }
  auto new_tree = std::make_shared<RStarTree>(cur->tree->Clone());
  if (!new_tree->Delete(Rectangle::FromPoint(cur->products->points[id]),
                        static_cast<RStarTree::Id>(id))) {
    return Status::NotFound(StrFormat("product %zu not present in index", id));
  }
  auto next = std::make_shared<internal::EngineCore>(*cur);
  next->tree = std::move(new_tree);
  if (next->options.use_packed_read_path) {
    next->packed_tree = std::make_shared<const PackedRTree>(
        PackedRTree::Freeze(*next->tree));
  }
  next->removed.resize(cur->products->points.size(), false);
  next->removed[id] = true;
  next->approx_dsls.reset();
  next->approx_k = 0;
  next->ParanoidCheckIndex();
  PublishCore(std::move(next));
  MetricSetGauge(GaugeId::kRslCacheSize, 0);
  return Status::Ok();
}

bool WhyNotEngine::IsLiveProduct(size_t id) const {
  std::shared_ptr<const internal::EngineCore> cur = CurrentCore();
  if (id >= cur->products->points.size()) return false;
  return id >= cur->removed.size() || !cur->removed[id];
}

double WhyNotEngine::MqpEvaluationCost(const Point& q,
                                       const Point& q_star) const {
  StatsScope scope(this);
  return CurrentCore()->MqpEvaluationCost(q, q_star);
}

std::optional<Point> WhyNotEngine::NudgeToStrictMember(
    const Point& c_star, const Point& q, size_t customer_index) const {
  return CurrentCore()->NudgeToStrictMember(c_star, q, customer_index);
}

QueryStats WhyNotEngine::stats() const {
  MutexLock lock(stats_mu_);
  return cum_stats_;
}

QueryStats WhyNotEngine::last_query_stats() const {
  MutexLock lock(stats_mu_);
  return last_query_stats_;
}

void WhyNotEngine::ResetStats() const {
  MutexLock lock(stats_mu_);
  last_query_stats_ = QueryStats();
  cum_stats_ = QueryStats();
}

}  // namespace wnrs
