#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "geometry/transform.h"
#include "index/bulk_load.h"
#include "reverse_skyline/bbrs.h"
#include "reverse_skyline/window_query.h"
#include "skyline/approx.h"
#include "skyline/bbs.h"

namespace wnrs {
namespace {

/// Bound on the query-keyed reverse-skyline memo; evicted FIFO. Workloads
/// revisit a handful of query points (the paper's batch setting), so a
/// small bound suffices and keeps lookup a linear scan.
constexpr size_t kRslCacheCapacity = 64;

Rectangle UnionBounds(const Dataset& a, const Dataset& b) {
  Rectangle bounds = a.Bounds();
  if (!b.points.empty()) {
    bounds = bounds.BoundingUnion(b.Bounds());
  }
  return bounds;
}

CostModel MakeCostModel(const Rectangle& universe,
                        const WhyNotEngineOptions& options) {
  std::vector<double> alpha = options.alpha;
  std::vector<double> beta = options.beta;
  if (alpha.empty()) alpha = EqualWeights(universe.dims());
  if (beta.empty()) beta = EqualWeights(universe.dims());
  return CostModel(universe, std::move(alpha), std::move(beta));
}

}  // namespace

/// Snapshot-delta scope. The constructor captures the registry at entry
/// of the outermost public call; the destructor captures again and books
/// the difference into the engine's cumulative and last-call stats. The
/// depth counter is engine-wide (not thread-local) so the worker-side
/// calls of a batch fan-out fold into the outermost call's delta instead
/// of double-counting.
class WhyNotEngine::StatsScope {
 public:
  explicit StatsScope(const WhyNotEngine* engine) : engine_(engine) {
    outermost_ =
        engine_->stats_depth_.fetch_add(1, std::memory_order_relaxed) == 0;
    if (outermost_) {
      start_ = MetricsRegistry::Default().CaptureQueryStats();
      start_time_ = std::chrono::steady_clock::now();
    }
  }

  StatsScope(const StatsScope&) = delete;
  StatsScope& operator=(const StatsScope&) = delete;

  ~StatsScope() {
    if (outermost_) {
      QueryStats delta =
          MetricsRegistry::Default().CaptureQueryStats() - start_;
      delta.engine_queries = 1;
      MetricAdd(CounterId::kEngineQueries);
      MetricRecord(
          HistogramId::kEngineQueryMicros,
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start_time_)
                  .count()));
      engine_->last_query_stats_ = delta;
      engine_->cum_stats_ += delta;
    }
    engine_->stats_depth_.fetch_sub(1, std::memory_order_relaxed);
  }

 private:
  const WhyNotEngine* engine_;
  bool outermost_ = false;
  QueryStats start_;
  std::chrono::steady_clock::time_point start_time_;
};

WhyNotEngine::WhyNotEngine(Dataset products, Dataset customers,
                           WhyNotEngineOptions options)
    : options_(options),
      pool_(std::make_unique<ThreadPool>(options.num_threads)),
      shared_relation_(false),
      products_(std::move(products)),
      customers_(std::move(customers)),
      tree_(BulkLoadPoints(products_.dims, products_.points, options.rtree)),
      universe_(UnionBounds(products_, customers_)),
      cost_model_(MakeCostModel(universe_, options_)) {
  WNRS_CHECK(products_.dims == customers_.dims);
  WNRS_CHECK(!products_.points.empty());
  WNRS_CHECK(!customers_.points.empty());
  customer_tree_ = std::make_unique<RStarTree>(
      BulkLoadPoints(customers_.dims, customers_.points, options.rtree));
}

WhyNotEngine::WhyNotEngine(Dataset data, WhyNotEngineOptions options)
    : options_(options),
      pool_(std::make_unique<ThreadPool>(options.num_threads)),
      shared_relation_(true),
      products_(std::move(data)),
      tree_(BulkLoadPoints(products_.dims, products_.points, options.rtree)),
      universe_(products_.Bounds()),
      cost_model_(MakeCostModel(universe_, options_)) {
  WNRS_CHECK(!products_.points.empty());
}

std::optional<RStarTree::Id> WhyNotEngine::ExcludeFor(
    size_t customer_index) const {
  if (!shared_relation_) return std::nullopt;
  return static_cast<RStarTree::Id>(customer_index);
}

const Point& WhyNotEngine::CustomerPoint(size_t c) const {
  const Dataset& ds = customers();
  WNRS_CHECK(c < ds.points.size());
  return ds.points[c];
}

std::vector<size_t> WhyNotEngine::ComputeReverseSkyline(const Point& q) const {
  std::vector<RStarTree::Id> ids;
  if (shared_relation_) {
    ids = BbrsReverseSkyline(tree_, q, pool_.get());
  } else {
    ids = BbrsReverseSkylineBichromatic(*customer_tree_, tree_, q,
                                        /*shared_relation=*/false,
                                        pool_.get());
  }
  std::vector<size_t> out;
  out.reserve(ids.size());
  for (RStarTree::Id id : ids) out.push_back(static_cast<size_t>(id));
  return out;
}

std::vector<size_t> WhyNotEngine::ReverseSkyline(const Point& q) const {
  StatsScope scope(this);
  {
    std::lock_guard<std::mutex> lock(rsl_cache_mu_);
    for (const auto& [key, rsl] : cached_rsl_) {
      if (key == q) {
        MetricAdd(CounterId::kRslCacheHits);
        return rsl;
      }
    }
  }
  MetricAdd(CounterId::kRslCacheMisses);
  // Compute outside the lock; concurrent misses for the same q may both
  // compute, but the results are identical and the first insert wins.
  std::vector<size_t> out = ComputeReverseSkyline(q);
  std::lock_guard<std::mutex> lock(rsl_cache_mu_);
  for (const auto& [key, rsl] : cached_rsl_) {
    if (key == q) return rsl;
  }
  if (cached_rsl_.size() >= kRslCacheCapacity) {
    cached_rsl_.erase(cached_rsl_.begin());
    MetricAdd(CounterId::kRslCacheEvictions);
  }
  cached_rsl_.emplace_back(q, out);
  MetricSetGauge(GaugeId::kRslCacheSize,
                 static_cast<int64_t>(cached_rsl_.size()));
  return out;
}

bool WhyNotEngine::IsReverseSkylineMember(size_t c, const Point& q) const {
  return WindowEmpty(tree_, CustomerPoint(c), q, ExcludeFor(c));
}

std::vector<size_t> WhyNotEngine::CustomersInRange(
    const Rectangle& window) const {
  const RStarTree& tree = shared_relation_ ? tree_ : *customer_tree_;
  std::vector<RStarTree::Id> ids = tree.RangeQueryIds(window);
  std::sort(ids.begin(), ids.end());
  std::vector<size_t> out;
  out.reserve(ids.size());
  for (RStarTree::Id id : ids) out.push_back(static_cast<size_t>(id));
  return out;
}

WhyNotExplanation WhyNotEngine::Explain(size_t c, const Point& q) const {
  StatsScope scope(this);
  return ExplainWhyNot(tree_, products_.points, CustomerPoint(c), q,
                       ExcludeFor(c));
}

MwpResult WhyNotEngine::ModifyWhyNot(size_t c, const Point& q) const {
  StatsScope scope(this);
  if (options_.fast_frontier) {
    return ModifyWhyNotPointFast(tree_, products_.points, CustomerPoint(c),
                                 q, cost_model_, options_.sort_dim,
                                 ExcludeFor(c));
  }
  return ModifyWhyNotPoint(tree_, products_.points, CustomerPoint(c), q,
                           cost_model_, options_.sort_dim, ExcludeFor(c));
}

MqpResult WhyNotEngine::ModifyQuery(size_t c, const Point& q) const {
  StatsScope scope(this);
  if (options_.fast_frontier) {
    return ModifyQueryPointFast(tree_, products_.points, CustomerPoint(c),
                                q, cost_model_, options_.sort_dim,
                                ExcludeFor(c));
  }
  return ModifyQueryPoint(tree_, products_.points, CustomerPoint(c), q,
                          cost_model_, options_.sort_dim, ExcludeFor(c));
}

const SafeRegionResult& WhyNotEngine::SafeRegion(const Point& q) const {
  StatsScope scope(this);
  if (cached_sr_query_.has_value() && *cached_sr_query_ == q) {
    return cached_sr_;
  }
  SafeRegionOptions sr_options;
  sr_options.sort_dim = options_.sort_dim;
  sr_options.max_rectangles = options_.max_safe_region_rectangles;
  const std::vector<size_t> rsl = ReverseSkyline(q);
  cached_sr_ =
      ComputeSafeRegion(tree_, products_.points, customers().points, rsl, q,
                        universe_, shared_relation_, sr_options);
  cached_sr_query_ = q;
  return cached_sr_;
}

const SafeRegionResult& WhyNotEngine::ApproxSafeRegion(const Point& q) const {
  StatsScope scope(this);
  WNRS_CHECK(HasApproxDsls());
  if (cached_approx_sr_query_.has_value() && *cached_approx_sr_query_ == q) {
    return cached_approx_sr_;
  }
  SafeRegionOptions sr_options;
  sr_options.sort_dim = options_.sort_dim;
  sr_options.max_rectangles = options_.max_safe_region_rectangles;
  const std::vector<size_t> rsl = ReverseSkyline(q);
  cached_approx_sr_ = ComputeApproxSafeRegion(
      customers().points, approx_dsls_, rsl, q, universe_, sr_options);
  cached_approx_sr_query_ = q;
  return cached_approx_sr_;
}

KeepsMembersFn WhyNotEngine::MakeKeepsMembersFn(const Point& q) const {
  std::vector<size_t> rsl = ReverseSkyline(q);
  return [this, rsl = std::move(rsl)](const Point& q_star) {
    // One independent membership probe per RSL member. Inside an outer
    // parallel loop (batch answering) this degrades to the serial scan.
    std::atomic<bool> keeps{true};
    pool_->ParallelFor(0, rsl.size(), [&](size_t i) {
      if (!keeps.load(std::memory_order_relaxed)) return;
      if (!WindowEmpty(tree_, CustomerPoint(rsl[i]), q_star,
                       ExcludeFor(rsl[i]))) {
        keeps.store(false, std::memory_order_relaxed);
      }
    });
    return keeps.load(std::memory_order_relaxed);
  };
}

MwqResult WhyNotEngine::ModifyBoth(size_t c, const Point& q) const {
  StatsScope scope(this);
  const SafeRegionResult& sr = SafeRegion(q);
  return ModifyQueryAndWhyNotPoint(tree_, products_.points, CustomerPoint(c),
                                   q, sr.region, universe_, cost_model_,
                                   options_.sort_dim, ExcludeFor(c),
                                   MakeKeepsMembersFn(q),
                                   options_.fast_frontier);
}

MwqResult WhyNotEngine::ModifyBothApprox(size_t c, const Point& q) const {
  StatsScope scope(this);
  const SafeRegionResult& sr = ApproxSafeRegion(q);
  return ModifyQueryAndWhyNotPoint(tree_, products_.points, CustomerPoint(c),
                                   q, sr.region, universe_, cost_model_,
                                   options_.sort_dim, ExcludeFor(c),
                                   MakeKeepsMembersFn(q),
                                   options_.fast_frontier);
}

SafeRegionResult WhyNotEngine::ConstrainedSafeRegion(
    const Point& q, const Rectangle& limits) const {
  WNRS_CHECK(limits.dims() == q.dims());
  SafeRegionResult out = SafeRegion(q);
  out.region.ClipTo(limits);
  if (!out.region.Contains(q)) {
    out.region.Add(Rectangle::FromPoint(q));
  }
  return out;
}

MwqResult WhyNotEngine::ModifyBothConstrained(size_t c, const Point& q,
                                              const Rectangle& limits) const {
  StatsScope scope(this);
  const SafeRegionResult sr = ConstrainedSafeRegion(q, limits);
  return ModifyQueryAndWhyNotPoint(tree_, products_.points, CustomerPoint(c),
                                   q, sr.region, universe_, cost_model_,
                                   options_.sort_dim, ExcludeFor(c),
                                   MakeKeepsMembersFn(q),
                                   options_.fast_frontier);
}

std::vector<size_t> WhyNotEngine::LostCustomers(const Point& q,
                                                const Point& q_star) const {
  StatsScope scope(this);
  const std::vector<size_t> members = ReverseSkyline(q);
  const std::vector<unsigned char> is_lost =
      pool_->ParallelMap<unsigned char>(members.size(), [&](size_t i) {
        return WindowEmpty(tree_, CustomerPoint(members[i]), q_star,
                           ExcludeFor(members[i]))
                   ? static_cast<unsigned char>(0)
                   : static_cast<unsigned char>(1);
      });
  std::vector<size_t> lost;
  for (size_t i = 0; i < members.size(); ++i) {
    if (is_lost[i] != 0) lost.push_back(members[i]);
  }
  return lost;
}

std::vector<MwqResult> WhyNotEngine::ModifyBothBatch(
    const std::vector<size_t>& whos, const Point& q, bool use_approx) const {
  StatsScope scope(this);
  // Materialize the safe region and RSL(q) once, before fanning out; the
  // parallel workers below then only read the warmed caches (the
  // safe-region slot is lock-free, so a cold cache would race).
  if (use_approx) {
    (void)ApproxSafeRegion(q);
  } else {
    (void)SafeRegion(q);
  }
  (void)ReverseSkyline(q);
  return pool_->ParallelMap<MwqResult>(whos.size(), [&](size_t i) {
    return use_approx ? ModifyBothApprox(whos[i], q) : ModifyBoth(whos[i], q);
  });
}

void WhyNotEngine::PrecomputeApproxDsls(size_t k) {
  StatsScope scope(this);
  WNRS_CHECK(k >= 2);
  const Dataset& ds = customers();
  approx_dsls_.clear();
  approx_dsls_.resize(ds.points.size());
  // One dynamic skyline per customer, each writing its own slot: the
  // embarrassingly parallel offline pass of Section VI-B.1.
  pool_->ParallelFor(0, ds.points.size(), [&](size_t c) {
    const std::vector<RStarTree::Id> dsl =
        BbsDynamicSkyline(tree_, ds.points[c], ExcludeFor(c));
    std::vector<Point> transformed;
    transformed.reserve(dsl.size());
    for (RStarTree::Id id : dsl) {
      transformed.push_back(ToDistanceSpace(
          products_.points[static_cast<size_t>(id)], ds.points[c]));
    }
    approx_dsls_[c] =
        ApproximateSkyline(std::move(transformed), k, options_.sort_dim);
  });
  approx_k_ = k;
  cached_approx_sr_query_.reset();
}

void WhyNotEngine::InvalidateDerivedState() {
  cached_sr_query_.reset();
  cached_approx_sr_query_.reset();
  {
    std::lock_guard<std::mutex> lock(rsl_cache_mu_);
    cached_rsl_.clear();
    MetricSetGauge(GaugeId::kRslCacheSize, 0);
  }
  // The approximated-DSL store is a function of the product set; a stale
  // store could silently lose safety, so it is dropped outright.
  approx_dsls_.clear();
  approx_k_ = 0;
}

size_t WhyNotEngine::AddProduct(const Point& p) {
  WNRS_CHECK(p.dims() == products_.dims);
  const size_t id = products_.points.size();
  products_.points.push_back(p);
  removed_.resize(products_.points.size(), false);
  tree_.Insert(p, static_cast<RStarTree::Id>(id));
  // Keep the universe a superset of all live points; the cost model's
  // normalization follows it when the new tuple falls outside.
  if (!universe_.Contains(p)) {
    universe_ = universe_.BoundingUnion(Rectangle::FromPoint(p));
    cost_model_ = MakeCostModel(universe_, options_);
  }
  InvalidateDerivedState();
  return id;
}

bool WhyNotEngine::RemoveProduct(size_t id) {
  if (id >= products_.points.size()) return false;
  if (id < removed_.size() && removed_[id]) return false;
  if (!tree_.Delete(Rectangle::FromPoint(products_.points[id]),
                    static_cast<RStarTree::Id>(id))) {
    return false;
  }
  removed_.resize(products_.points.size(), false);
  removed_[id] = true;
  InvalidateDerivedState();
  return true;
}

bool WhyNotEngine::IsLiveProduct(size_t id) const {
  if (id >= products_.points.size()) return false;
  return id >= removed_.size() || !removed_[id];
}

Status WhyNotEngine::SaveApproxDsls(const std::string& path) const {
  if (!HasApproxDsls()) {
    return Status::FailedPrecondition("no approximated DSL store to save");
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const size_t dims = products_.dims;
  out << "wnrs-approx-dsl 1\n"
      << approx_k_ << ' ' << dims << ' ' << approx_dsls_.size() << '\n';
  for (const std::vector<Point>& dsl : approx_dsls_) {
    out << dsl.size();
    for (const Point& p : dsl) {
      for (size_t i = 0; i < dims; ++i) {
        out << ' ' << StrFormat("%.17g", p[i]);
      }
    }
    out << '\n';
  }
  out.flush();
  if (!out.good()) return Status::IoError("write failure: " + path);
  return Status::Ok();
}

Status WhyNotEngine::LoadApproxDsls(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string magic;
  int version = 0;
  size_t k = 0;
  size_t dims = 0;
  size_t count = 0;
  in >> magic >> version >> k >> dims >> count;
  if (!in.good() || magic != "wnrs-approx-dsl" || version != 1) {
    return Status::InvalidArgument("not a wnrs approx-DSL store: " + path);
  }
  // PrecomputeApproxDsls enforces k >= 2 (the sampling rule needs a first
  // and a last point); a loaded store must satisfy the same invariant.
  if (k < 2) {
    return Status::InvalidArgument(
        StrFormat("approx-DSL store has k=%zu; k >= 2 required", k));
  }
  if (dims != products_.dims) {
    return Status::InvalidArgument("store dimensionality mismatch");
  }
  if (count != customers().points.size()) {
    return Status::InvalidArgument(
        StrFormat("store has %zu customers, engine has %zu", count,
                  customers().points.size()));
  }
  std::vector<std::vector<Point>> loaded(count);
  std::string token;
  for (size_t c = 0; c < count; ++c) {
    size_t entries = 0;
    if (!(in >> entries)) {
      return Status::InvalidArgument("truncated approx-DSL store: " + path);
    }
    loaded[c].reserve(entries);
    for (size_t e = 0; e < entries; ++e) {
      Point p(dims);
      for (size_t i = 0; i < dims; ++i) {
        // Parse via strtod (istream extraction rejects "nan"/"inf"
        // outright, which would misreport them as truncation).
        if (!(in >> token)) {
          return Status::InvalidArgument("truncated approx-DSL store: " +
                                         path);
        }
        char* end_ptr = nullptr;
        const double v = std::strtod(token.c_str(), &end_ptr);
        if (end_ptr == token.c_str() || *end_ptr != '\0') {
          return Status::InvalidArgument("malformed coordinate '" + token +
                                         "' in approx-DSL store: " + path);
        }
        if (!std::isfinite(v)) {
          return Status::InvalidArgument(
              "non-finite coordinate in approx-DSL store: " + path);
        }
        p[i] = v;
      }
      loaded[c].push_back(std::move(p));
    }
  }
  approx_dsls_ = std::move(loaded);
  approx_k_ = k;
  cached_approx_sr_query_.reset();
  return Status::Ok();
}

double WhyNotEngine::MqpEvaluationCost(const Point& q,
                                       const Point& q_star) const {
  StatsScope scope(this);
  // alpha-cost of leaving the safe region: distance from the closest safe
  // point q' to q*.
  const SafeRegionResult& sr = SafeRegion(q);
  double cost = 0.0;
  if (!sr.region.empty()) {
    const Point q_prime = sr.region.NearestPointTo(q_star);
    cost += cost_model_.QueryMoveCost(q_prime, q_star);
  } else {
    cost += cost_model_.QueryMoveCost(q, q_star);
  }
  // beta-cost of winning back every lost reverse-skyline customer. The
  // per-member costs are computed in parallel but summed in member order,
  // keeping the total bit-identical to the serial loop.
  const std::vector<size_t> rsl = ReverseSkyline(q);
  const std::vector<double> win_back =
      pool_->ParallelMap<double>(rsl.size(), [&](size_t i) {
        const size_t c = rsl[i];
        if (IsReverseSkylineMember(c, q_star)) return 0.0;
        const MwpResult mwp = ModifyWhyNot(c, q_star);
        return mwp.candidates.empty() ? 0.0 : mwp.candidates.front().cost;
      });
  for (double v : win_back) cost += v;
  return cost;
}

std::optional<Point> WhyNotEngine::NudgeToStrictMember(
    const Point& c_star, const Point& q, size_t customer_index) const {
  double fraction = options_.epsilon_fraction;
  for (int attempt = 0; attempt < 4; ++attempt) {
    Point nudged = c_star;
    for (size_t i = 0; i < nudged.dims(); ++i) {
      const double range = universe_.hi()[i] - universe_.lo()[i];
      const double eps = fraction * (range > 0.0 ? range : 1.0);
      if (q[i] > nudged[i]) {
        nudged[i] += eps;
      } else if (q[i] < nudged[i]) {
        nudged[i] -= eps;
      }
    }
    // Membership of a moved customer: no product may dominate q w.r.t.
    // the nudged location. The customer's own (old) tuple stays excluded
    // in the shared-relation setting.
    if (WindowEmpty(tree_, nudged, q, ExcludeFor(customer_index))) {
      return nudged;
    }
    fraction *= 100.0;
  }
  return std::nullopt;
}

}  // namespace wnrs
