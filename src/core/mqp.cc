#include "core/mqp.h"

#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "geometry/dominance.h"
#include "geometry/transform.h"
#include "reverse_skyline/window_query.h"
#include "skyline/bnl.h"
#include "skyline/staircase.h"

namespace wnrs {
namespace {

/// Shared tail of both MQP variants: staircase candidates from the
/// frontier in c_t's distance space, feasibility filtering, mapping back
/// to the original space, and costing.
void FinishMqp(const Point& c_t, const Point& q,
               const std::vector<Point>& frontier_t,
               const CostModel& cost_model, size_t sort_dim,
               MqpResult* out) {
  const size_t dims = q.dims();
  const Point q_t = ToDistanceSpace(q, c_t);
  std::vector<Point> candidates_t =
      StaircaseCandidates(frontier_t, sort_dim, StaircaseMerge::kMax, q_t);

  // Feasibility: q* must not be dominated by a frontier culprit in c_t's
  // distance space — some coordinate must be strictly below the culprit's,
  // or on a tie that an epsilon shrink toward c_t can break (impossible
  // when the culprit shares a coordinate with c_t). q* = c_t itself is
  // always feasible (a product matching the preference exactly is always
  // in its dynamic skyline), so it backstops the candidate set.
  auto feasible = [&](const Point& t) {
    for (const Point& f : frontier_t) {
      bool escapes = false;
      for (size_t i = 0; i < dims && !escapes; ++i) {
        if (f[i] > t[i] || (f[i] == t[i] && t[i] > 0.0)) escapes = true;
      }
      if (!escapes) return false;
    }
    return true;
  };
  MetricAdd(CounterId::kCandidatesGenerated, candidates_t.size());
  std::vector<Point> kept;
  kept.reserve(candidates_t.size());
  for (Point& t : candidates_t) {
    if (feasible(t)) kept.push_back(std::move(t));
  }
  if (kept.empty()) {
    kept.push_back(Point(dims));  // All-zero: q* = c_t.
  }

  MetricAdd(CounterId::kCandidatesExamined, kept.size());
  // Map transformed candidates back to the original space. Dynamic-skyline
  // membership depends only on transformed coordinates, so we pick the
  // preimage on q's side of c_t in every dimension, which minimizes
  // |q - q*|.
  out->candidates.reserve(kept.size());
  for (const Point& t : kept) {
    Point q_star(dims);
    for (size_t i = 0; i < dims; ++i) {
      const double side = q[i] >= c_t[i] ? 1.0 : -1.0;
      q_star[i] = c_t[i] + side * t[i];
    }
    const double cost = cost_model.QueryMoveCost(q, q_star);
    out->candidates.push_back({std::move(q_star), cost});
  }
  SortCandidates(&out->candidates);
}

}  // namespace

MqpResult ModifyQueryPointFromCulprits(const std::vector<Point>& products,
                                       std::vector<RStarTree::Id> culprits,
                                       const Point& c_t, const Point& q,
                                       const CostModel& cost_model,
                                       size_t sort_dim) {
  WNRS_CHECK(c_t.dims() == q.dims());
  MqpResult out;
  out.culprits = std::move(culprits);
  if (out.culprits.empty()) {
    out.already_member = true;
    out.candidates.push_back({q, 0.0});
    return out;
  }

  // F = Λ ∩ DSL(c_t): culprits not dynamically dominated w.r.t. c_t by
  // another culprit (the paper's trick for skipping a full DSL
  // computation). Work directly in c_t's distance space.
  std::vector<Point> lambda_t;
  lambda_t.reserve(out.culprits.size());
  for (RStarTree::Id id : out.culprits) {
    WNRS_CHECK(static_cast<size_t>(id) < products.size());
    lambda_t.push_back(
        ToDistanceSpace(products[static_cast<size_t>(id)], c_t));
  }
  std::vector<Point> frontier_t;
  for (size_t idx : SkylineIndicesBnl(lambda_t)) {
    frontier_t.push_back(lambda_t[idx]);
  }
  FinishMqp(c_t, q, frontier_t, cost_model, sort_dim, &out);
  return out;
}

MqpResult ModifyQueryPointFromFrontier(
    const std::vector<Point>& products,
    std::vector<RStarTree::Id> frontier_ids, const Point& c_t, const Point& q,
    const CostModel& cost_model, size_t sort_dim) {
  WNRS_CHECK(c_t.dims() == q.dims());
  MqpResult out;
  out.culprits = std::move(frontier_ids);
  if (out.culprits.empty()) {
    out.already_member = true;
    out.candidates.push_back({q, 0.0});
    return out;
  }
  std::vector<Point> frontier_t;
  frontier_t.reserve(out.culprits.size());
  for (RStarTree::Id id : out.culprits) {
    WNRS_CHECK(static_cast<size_t>(id) < products.size());
    frontier_t.push_back(
        ToDistanceSpace(products[static_cast<size_t>(id)], c_t));
  }
  FinishMqp(c_t, q, frontier_t, cost_model, sort_dim, &out);
  return out;
}

MqpResult ModifyQueryPoint(const RStarTree& tree,
                           const std::vector<Point>& products,
                           const Point& c_t, const Point& q,
                           const CostModel& cost_model, size_t sort_dim,
                           std::optional<RStarTree::Id> exclude_id) {
  WNRS_CHECK(c_t.dims() == q.dims());
  return ModifyQueryPointFromCulprits(
      products, WindowQuery(tree, c_t, q, exclude_id), c_t, q, cost_model,
      sort_dim);
}

MqpResult ModifyQueryPointFast(const RStarTree& tree,
                               const std::vector<Point>& products,
                               const Point& c_t, const Point& q,
                               const CostModel& cost_model, size_t sort_dim,
                               std::optional<RStarTree::Id> exclude_id) {
  WNRS_CHECK(c_t.dims() == q.dims());
  return ModifyQueryPointFromFrontier(
      products, WindowSkyline(tree, c_t, q, /*origin=*/c_t, exclude_id), c_t,
      q, cost_model, sort_dim);
}

}  // namespace wnrs
