#ifndef WNRS_CORE_STRICT_H_
#define WNRS_CORE_STRICT_H_

#include <functional>
#include <optional>

#include "core/cost.h"
#include "core/mqp.h"
#include "core/mwp.h"
#include "core/mwq.h"
#include "geometry/rectangle.h"

namespace wnrs {

/// Window-emptiness probe with the relevant customer's own-tuple
/// exclusion already bound by the provider: returns true iff W(c, q)
/// holds no (other) product. Implemented by one engine core over its
/// product index, or by a sharded engine as the conjunction over tiles.
using StrictWindowEmptyFn =
    std::function<bool(const Point& c, const Point& q)>;

/// Shared Semantics::kStrict machinery (see engine.h): the paper's
/// algorithms return closed-boundary answers that tie with a culprit;
/// these helpers nudge them into strict reverse-skyline membership. They
/// live here, parameterized on the window probe, so every execution
/// backend applies the identical nudge schedule and cost recomputation.

/// Moves `c_star` epsilon toward q per dimension (epsilon =
/// epsilon_fraction of each dimension's universe range, growing 100x per
/// retry for four attempts) until the probe confirms strict membership.
/// Returns nullopt when even the widest nudge fails.
std::optional<Point> NudgeToStrictMemberImpl(
    const Point& c_star, const Point& q, const Rectangle& universe,
    double epsilon_fraction, const StrictWindowEmptyFn& window_empty);

/// The query-side twin: moves q_star epsilon toward the customer per
/// dimension (shrinking the membership window) until `customer` is a
/// strict member under the nudged query.
std::optional<Point> NudgeQueryToStrictImpl(
    const Point& q_star, const Point& customer, const Rectangle& universe,
    double epsilon_fraction, const StrictWindowEmptyFn& window_empty);

/// Strict post-passes for the three modification algorithms: each nudges
/// the boundary candidates into strict membership, recomputes their costs
/// under the same weight vectors, and re-sorts; candidates whose nudge
/// fails (adversarial 2-D staircase inputs) keep their boundary location.

void ApplyStrictMwpImpl(const Point& customer, const Point& q,
                        const CostModel& cost_model,
                        const Rectangle& universe, double epsilon_fraction,
                        const StrictWindowEmptyFn& window_empty,
                        MwpResult* r);

void ApplyStrictMqpImpl(const Point& customer, const Point& q,
                        const CostModel& cost_model,
                        const Rectangle& universe, double epsilon_fraction,
                        const StrictWindowEmptyFn& window_empty,
                        MqpResult* r);

void ApplyStrictMwqImpl(const Point& customer, const CostModel& cost_model,
                        const Rectangle& universe, double epsilon_fraction,
                        const StrictWindowEmptyFn& window_empty,
                        MwqResult* r);

}  // namespace wnrs

#endif  // WNRS_CORE_STRICT_H_
