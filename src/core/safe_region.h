#ifndef WNRS_CORE_SAFE_REGION_H_
#define WNRS_CORE_SAFE_REGION_H_

#include <functional>
#include <optional>
#include <vector>

#include "geometry/region.h"
#include "index/rtree.h"

namespace wnrs {

/// Tuning for safe-region computation (Algorithm 3).
struct SafeRegionOptions {
  /// Sort dimension of the staircase constructions.
  size_t sort_dim = 0;
  /// Hard cap on intermediate rectangle counts; iterated intersections are
  /// pruned but can still grow, and exceeding the cap flags the result.
  size_t max_rectangles = 8192;
};

/// Result of Algorithm 3 (exact) or its approximated variant.
struct SafeRegionResult {
  /// Union-of-rectangles safe region SR(q). Contains q itself (Lemma 2).
  /// When RSL(q) is empty the safe region is the whole data universe.
  RectRegion region;
  /// Number of reverse-skyline customers whose DDR̄ was intersected.
  size_t customers_processed = 0;
  /// True if max_rectangles was hit and the region was truncated to the
  /// highest-volume rectangles (still a subset of the true safe region,
  /// so never unsafe).
  bool truncated = false;
};

/// Exact safe region: SR(q) = intersection over c_l in RSL(q) of
/// DDR̄(c_l) (Lemma 2 / Algorithm 3). Each customer's dynamic skyline is
/// computed over the product tree with BBS (`exclude self` in the
/// shared-relation setting, where customer index == product id).
///
/// `products` maps tree ids to points (id = index); `rsl` holds indices
/// into `customers`; `universe` bounds the rectangle representation (use
/// the dataset bounds, possibly extended to contain q).
SafeRegionResult ComputeSafeRegion(const RStarTree& products_tree,
                                   const std::vector<Point>& products,
                                   const std::vector<Point>& customers,
                                   const std::vector<size_t>& rsl,
                                   const Point& q, const Rectangle& universe,
                                   bool shared_relation,
                                   const SafeRegionOptions& options = {});

/// Produces DSL(customer) product ids for a customer index. Order is
/// immaterial (the anti-dominance staircase re-sorts) but duplicate
/// skyline points must all be reported, matching BbsDynamicSkyline.
using DslProviderFn =
    std::function<std::vector<RStarTree::Id>(size_t customer)>;

/// ComputeSafeRegion with the per-customer dynamic skylines supplied by
/// `dsl_for` instead of a BBS traversal of one concrete tree — the seam a
/// sharded engine plugs its cross-tile DSL merge into. The intersection
/// loop, staircase construction, truncation and metrics are shared with
/// the tree-based form, so identical DSLs give identical regions.
SafeRegionResult ComputeSafeRegionWithDsls(
    const std::vector<Point>& products, const std::vector<Point>& customers,
    const std::vector<size_t>& rsl, const Point& q, const Rectangle& universe,
    const DslProviderFn& dsl_for, const SafeRegionOptions& options = {});

/// Approximated safe region from precomputed sampled dynamic skylines
/// (paper, Section VI-B.1): `approx_dsls[i]` holds the sampled transformed
/// DSL of customer i (as produced by ApproximateSkyline). Rectangle pairs
/// are not merged, so the result is a subset of the exact safe region.
SafeRegionResult ComputeApproxSafeRegion(
    const std::vector<Point>& customers,
    const std::vector<std::vector<Point>>& approx_dsls,
    const std::vector<size_t>& rsl, const Point& q,
    const Rectangle& universe, const SafeRegionOptions& options = {});

}  // namespace wnrs

#endif  // WNRS_CORE_SAFE_REGION_H_
