#include "core/strict.h"

#include "common/logging.h"

namespace wnrs {

std::optional<Point> NudgeToStrictMemberImpl(
    const Point& c_star, const Point& q, const Rectangle& universe,
    double epsilon_fraction, const StrictWindowEmptyFn& window_empty) {
  double fraction = epsilon_fraction;
  for (int attempt = 0; attempt < 4; ++attempt) {
    Point nudged = c_star;
    for (size_t i = 0; i < nudged.dims(); ++i) {
      const double range = universe.hi()[i] - universe.lo()[i];
      const double eps = fraction * (range > 0.0 ? range : 1.0);
      if (q[i] > nudged[i]) {
        nudged[i] += eps;
      } else if (q[i] < nudged[i]) {
        nudged[i] -= eps;
      }
    }
    // Membership of a moved customer: no product may dominate q w.r.t.
    // the nudged location. The customer's own (old) tuple stays excluded
    // in the shared-relation setting (bound into the probe).
    if (window_empty(nudged, q)) {
      return nudged;
    }
    fraction *= 100.0;
  }
  return std::nullopt;
}

std::optional<Point> NudgeQueryToStrictImpl(
    const Point& q_star, const Point& customer, const Rectangle& universe,
    double epsilon_fraction, const StrictWindowEmptyFn& window_empty) {
  double fraction = epsilon_fraction;
  for (int attempt = 0; attempt < 4; ++attempt) {
    Point nudged = q_star;
    for (size_t i = 0; i < nudged.dims(); ++i) {
      const double range = universe.hi()[i] - universe.lo()[i];
      const double eps = fraction * (range > 0.0 ? range : 1.0);
      if (customer[i] > nudged[i]) {
        nudged[i] += eps;
      } else if (customer[i] < nudged[i]) {
        nudged[i] -= eps;
      }
    }
    if (window_empty(customer, nudged)) {
      return nudged;
    }
    fraction *= 100.0;
  }
  return std::nullopt;
}

void ApplyStrictMwpImpl(const Point& customer, const Point& q,
                        const CostModel& cost_model,
                        const Rectangle& universe, double epsilon_fraction,
                        const StrictWindowEmptyFn& window_empty,
                        MwpResult* r) {
  if (r->already_member) return;
  bool changed = false;
  for (Candidate& cand : r->candidates) {
    if (std::optional<Point> nudged = NudgeToStrictMemberImpl(
            cand.point, q, universe, epsilon_fraction, window_empty)) {
      cand.point = *nudged;
      cand.cost = cost_model.WhyNotMoveCost(customer, cand.point);
      changed = true;
    }
  }
  if (changed) SortCandidates(&r->candidates);
}

void ApplyStrictMqpImpl(const Point& customer, const Point& q,
                        const CostModel& cost_model,
                        const Rectangle& universe, double epsilon_fraction,
                        const StrictWindowEmptyFn& window_empty,
                        MqpResult* r) {
  if (r->already_member) return;
  bool changed = false;
  for (Candidate& cand : r->candidates) {
    if (std::optional<Point> nudged = NudgeQueryToStrictImpl(
            cand.point, customer, universe, epsilon_fraction, window_empty)) {
      cand.point = *nudged;
      cand.cost = cost_model.QueryMoveCost(q, cand.point);
      changed = true;
    }
  }
  if (changed) SortCandidates(&r->candidates);
}

void ApplyStrictMwqImpl(const Point& customer, const CostModel& cost_model,
                        const Rectangle& universe, double epsilon_fraction,
                        const StrictWindowEmptyFn& window_empty,
                        MwqResult* r) {
  // Only the C2 why-not movements are nudged: in C1 (and for the C2
  // query positions) q is confined to the safe region, and pushing it
  // off the region boundary could sacrifice an existing member — the
  // one guarantee Algorithm 4 exists to keep.
  if (r->already_member || r->overlap) return;
  if (r->query_candidates.empty() || r->why_not_candidates.empty()) return;
  const Point& q_star = r->query_candidates.front().point;
  bool changed = false;
  for (Candidate& cand : r->why_not_candidates) {
    if (std::optional<Point> nudged = NudgeToStrictMemberImpl(
            cand.point, q_star, universe, epsilon_fraction, window_empty)) {
      cand.point = *nudged;
      cand.cost = cost_model.WhyNotMoveCost(customer, cand.point);
      changed = true;
    }
  }
  if (changed) {
    SortCandidates(&r->why_not_candidates);
    r->best_cost = r->why_not_candidates.front().cost;
  }
}

}  // namespace wnrs
