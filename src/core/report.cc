#include "core/report.h"

#include <algorithm>

#include "common/string_util.h"

namespace wnrs {
namespace {

void AppendCandidates(const std::vector<Candidate>& candidates, size_t cap,
                      const char* what, std::string* out) {
  const size_t shown = std::min(cap, candidates.size());
  for (size_t i = 0; i < shown; ++i) {
    out->append(StrFormat("    %s %s  (cost %.6f)\n", what,
                          candidates[i].point.ToString().c_str(),
                          candidates[i].cost));
  }
  if (candidates.size() > shown) {
    out->append(StrFormat("    ... %zu more\n", candidates.size() - shown));
  }
}

}  // namespace

std::string RenderWhyNotReport(const WhyNotEngine& engine, size_t customer,
                               const Point& q,
                               const ReportOptions& options) {
  std::string out;
  const Point& pref = engine.customers().points[customer];
  out.append(StrFormat("why-not report: customer #%zu %s vs product %s\n",
                       customer, pref.ToString().c_str(),
                       q.ToString().c_str()));

  if (engine.IsReverseSkylineMember(customer, q)) {
    out.append("  the customer is already in the reverse skyline of q; "
               "nothing to explain.\n");
    return out;
  }

  // Aspect 1: the causes.
  const WhyNotExplanation why = engine.Explain(customer, q);
  out.append(StrFormat(
      "  cause: %zu product(s) match this customer's preference better "
      "than q\n",
      why.culprits.size()));
  const size_t listed =
      std::min(options.max_culprits_listed, why.frontier.size());
  out.append("  binding frontier:");
  for (size_t i = 0; i < listed; ++i) {
    const auto id = static_cast<size_t>(why.frontier[i]);
    out.append(StrFormat(" #%zu %s", id,
                         engine.products().points[id].ToString().c_str()));
  }
  if (why.frontier.size() > listed) {
    out.append(StrFormat(" ... (%zu more)", why.frontier.size() - listed));
  }
  out.append("\n");

  // Aspect 2: move the customer (Algorithm 1).
  out.append("  option A - persuade the customer (MWP):\n");
  AppendCandidates(engine.ModifyWhyNot(customer, q).candidates,
                   options.max_candidates, "move customer to", &out);

  // Aspect 3 without the safe region (Algorithm 2).
  out.append(
      "  option B - change the product, existing customers at risk "
      "(MQP):\n");
  const MqpResult mqp = engine.ModifyQuery(customer, q);
  const size_t shown = std::min(options.max_candidates,
                                mqp.candidates.size());
  for (size_t i = 0; i < shown; ++i) {
    const size_t lost =
        engine.LostCustomers(q, mqp.candidates[i].point).size();
    out.append(StrFormat(
        "    move product to %s  (move cost %.6f, loses %zu customer%s)\n",
        mqp.candidates[i].point.ToString().c_str(), mqp.candidates[i].cost,
        lost, lost == 1 ? "" : "s"));
  }

  // Aspect 3 with the safe region (Algorithm 4).
  const MwqResult mwq = engine.ModifyBoth(customer, q);
  if (mwq.overlap) {
    out.append(StrFormat(
        "  option C - reposition safely, keep everyone (MWQ): move product "
        "to %s at ZERO cost\n",
        mwq.query_candidates.front().point.ToString().c_str()));
  } else {
    out.append(StrFormat(
        "  option C - reposition safely + persuade (MWQ): move product to "
        "%s, then\n",
        mwq.query_candidates.front().point.ToString().c_str()));
    AppendCandidates(mwq.why_not_candidates, options.max_candidates,
                     "move customer to", &out);
    out.append(StrFormat("    total cost %.6f\n", mwq.best_cost));
  }

  if (options.include_safe_region) {
    const SafeRegionResult& sr = engine.SafeRegion(q);
    out.append(StrFormat(
        "  safe region of q (%zu rectangle%s, %.4g%% of the data space):\n",
        sr.region.size(), sr.region.size() == 1 ? "" : "s",
        100.0 * sr.region.UnionVolume() / engine.universe().Volume()));
    for (const Rectangle& r : sr.region.rects()) {
      out.append(StrFormat("    %s\n", r.ToString().c_str()));
    }
  }
  return out;
}

}  // namespace wnrs
