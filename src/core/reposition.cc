#include "core/reposition.h"

#include <algorithm>

#include "common/logging.h"

namespace wnrs {
namespace {

/// Pulls a rectangle corner a hair toward the center so the probe lands
/// strictly inside the (closed) safe region.
Point PulledCorner(const Rectangle& rect, size_t mask) {
  const Point center = rect.Center();
  Point corner(rect.dims());
  for (size_t i = 0; i < rect.dims(); ++i) {
    corner[i] = (mask >> i) & 1 ? rect.hi()[i] : rect.lo()[i];
    corner[i] += 1e-9 * (center[i] - corner[i]);
  }
  return corner;
}

}  // namespace

RepositionAnalysis AnalyzeRepositioning(const WhyNotEngine& engine,
                                        const Point& q,
                                        std::vector<Point> candidates,
                                        size_t max_options) {
  WNRS_CHECK(q.dims() == engine.products().dims);
  RepositionAnalysis out;
  out.current_members = engine.ReverseSkyline(q);

  if (candidates.empty()) {
    candidates.push_back(q);  // Baseline: stay put.
    const SafeRegionResult& sr = engine.SafeRegion(q);
    for (const Rectangle& rect : sr.region.rects()) {
      candidates.push_back(rect.Center());
      WNRS_CHECK(rect.dims() < 25);
      const size_t corners = static_cast<size_t>(1) << rect.dims();
      for (size_t mask = 0; mask < corners; ++mask) {
        candidates.push_back(PulledCorner(rect, mask));
      }
      if (candidates.size() > max_options * 4) break;
    }
  }

  for (const Point& q_star : candidates) {
    RepositionOption option;
    option.q_star = q_star;
    option.move_cost = engine.cost_model().QueryMoveCost(q, q_star);
    const std::vector<size_t> members = engine.ReverseSkyline(q_star);
    std::set_difference(members.begin(), members.end(),
                        out.current_members.begin(),
                        out.current_members.end(),
                        std::back_inserter(option.gained));
    std::set_difference(out.current_members.begin(),
                        out.current_members.end(), members.begin(),
                        members.end(), std::back_inserter(option.lost));
    out.options.push_back(std::move(option));
  }

  std::sort(out.options.begin(), out.options.end(),
            [](const RepositionOption& a, const RepositionOption& b) {
              if (a.net() != b.net()) return a.net() > b.net();
              if (a.move_cost != b.move_cost) {
                return a.move_cost < b.move_cost;
              }
              return a.q_star < b.q_star;
            });
  if (out.options.size() > max_options) {
    out.options.resize(max_options);
  }
  return out;
}

}  // namespace wnrs
