#ifndef WNRS_SERVE_SCHEDULER_H_
#define WNRS_SERVE_SCHEDULER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include "common/annotated_mutex.h"
#include "common/status.h"
#include "core/engine.h"
#include "serve/api.h"
#include "serve/backend.h"

namespace wnrs {
namespace serve {

/// Scheduler tuning.
struct SchedulerOptions {
  /// Admission control: Submit rejects with ResourceExhausted once this
  /// many requests are queued (dispatched requests no longer count).
  size_t max_queue_depth = 1024;
  /// Cap on how many same-q requests one dispatch batch may absorb.
  size_t max_batch = 16;
  /// Construct paused (no dispatching until Resume()); lets tests fill
  /// the queue deterministically before the first dispatch.
  bool start_paused = false;
};

/// Point-in-time scheduler counters (process-global equivalents live in
/// MetricsRegistry under serve.*).
struct SchedulerStats {
  uint64_t submitted = 0;         ///< Admitted into the queue.
  uint64_t admission_rejects = 0; ///< Refused by the queue-depth cap.
  uint64_t deadline_misses = 0;   ///< Expired before or during execution.
  uint64_t batch_share_hits = 0;  ///< Requests that rode a same-q batch.
  uint64_t completed = 0;         ///< Responses delivered with a payload.
};

/// Deadline-aware request scheduler over one QueryBackend — a single
/// WhyNotEngine or the sharded engine, both behind the same listener. The
/// request/response types live in serve/api.h (they are shared with the
/// wire protocol in src/net/).
///
/// A single dispatcher thread drains a priority+FIFO queue. Each dispatch
/// takes the backend snapshot current at that moment, pulls every queued
/// request with the same query point q (up to max_batch), and answers
/// them against that one snapshot — the safe region and reverse skyline
/// of q are computed once and shared across the batch through the
/// snapshot's synchronized caches, and same-semantics MWQ runs fan out on
/// the backend's existing ThreadPool (no second pool). Backend mutations
/// interleave freely: a batch in flight keeps its snapshot while the next
/// dispatch observes the new one.
///
/// Deadlines: a request's relative `timeout` is resolved against the
/// Submit timestamp (see EffectiveDeadline for the precedence rule with
/// an absolute `deadline`); expiry is checked at dispatch and again after
/// execution.
///
/// Thread-safe: any number of threads may Submit concurrently.
class RequestScheduler {
 public:
  /// The engine must outlive the scheduler (the scheduler pins snapshots,
  /// not the engine itself). Convenience form of the backend constructor
  /// below, wrapping the engine in an EngineBackend.
  explicit RequestScheduler(const WhyNotEngine* engine,
                            SchedulerOptions options = {});

  /// Schedules onto any QueryBackend (serve/backend.h) — the seam the
  /// sharded engine plugs into. The backend must stay valid for the
  /// scheduler's lifetime.
  explicit RequestScheduler(std::shared_ptr<const QueryBackend> backend,
                            SchedulerOptions options = {});

  ~RequestScheduler();

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Enqueues a request. The future is always eventually fulfilled:
  /// with the answer, or with ResourceExhausted (admission control),
  /// DeadlineExceeded (expired in queue), Unavailable (shutdown), or a
  /// validation error from the engine's Try* layer. After Shutdown the
  /// returned future is already fulfilled (Unavailable) when Submit
  /// returns.
  /// [[nodiscard]]: dropping the future silently swallows admission
  /// rejects, deadline misses, and every other per-request error.
  [[nodiscard]] std::future<WhyNotResponse> Submit(WhyNotRequest request);

  /// Submit + block for the response. After Shutdown this returns an
  /// Unavailable response immediately, without touching the
  /// promise/future machinery of the rejected-submit path.
  [[nodiscard]] WhyNotResponse SubmitAndWait(WhyNotRequest request);

  /// Halts dispatching (in-flight batches finish); Submit still admits.
  void Pause();
  void Resume();

  /// Stops the dispatcher and fails every still-queued request with
  /// Unavailable. When Shutdown returns, every future handed out by an
  /// earlier Submit is fulfilled. Idempotent; the destructor calls it.
  void Shutdown();

  /// Requests currently queued (excludes in-flight dispatches).
  size_t queue_depth() const;

  SchedulerStats stats() const;

 private:
  struct Pending {
    WhyNotRequest request;
    std::promise<WhyNotResponse> promise;
    uint64_t seq = 0;
    std::chrono::steady_clock::time_point submitted;
    /// deadline/timeout resolved at Submit time (api.h EffectiveDeadline).
    std::optional<std::chrono::steady_clock::time_point> deadline;
  };

  void DispatcherLoop();
  void ExecuteBatch(std::vector<Pending> batch);
  /// Runs one validated request against the shared snapshot.
  WhyNotResponse ExecuteOne(const QuerySnapshot& snapshot,
                            const WhyNotRequest& request) const;

  const std::shared_ptr<const QueryBackend> backend_;
  const SchedulerOptions options_;

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Pending> queue_ WNRS_GUARDED_BY(mu_);
  uint64_t next_seq_ WNRS_GUARDED_BY(mu_) = 0;
  bool paused_ WNRS_GUARDED_BY(mu_) = false;
  bool shutdown_ WNRS_GUARDED_BY(mu_) = false;
  SchedulerStats stats_ WNRS_GUARDED_BY(mu_);

  /// Serializes Shutdown callers: the first one joins the dispatcher and
  /// drains the queue while any later caller blocks here until that is
  /// done (two threads joining the same std::thread is UB). Ordered
  /// strictly before mu_ (never acquire shutdown_mu_ with mu_ held).
  Mutex shutdown_mu_;
  std::thread dispatcher_ WNRS_GUARDED_BY(shutdown_mu_);
};

}  // namespace serve
}  // namespace wnrs

#endif  // WNRS_SERVE_SCHEDULER_H_
