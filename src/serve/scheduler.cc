#include "serve/scheduler.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/metrics.h"
#include "common/string_util.h"

namespace wnrs {
namespace serve {

namespace {

uint64_t MicrosBetween(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

WhyNotResponse UnavailableResponse(RequestKind kind, const char* message) {
  WhyNotResponse response;
  response.kind = kind;
  response.status = Status::Unavailable(message);
  return response;
}

}  // namespace

RequestScheduler::RequestScheduler(const WhyNotEngine* engine,
                                   SchedulerOptions options)
    : RequestScheduler(std::make_shared<const EngineBackend>(engine),
                       options) {}

RequestScheduler::RequestScheduler(
    std::shared_ptr<const QueryBackend> backend, SchedulerOptions options)
    : backend_(std::move(backend)),
      options_(options),
      paused_(options.start_paused) {
  dispatcher_ = std::thread(&RequestScheduler::DispatcherLoop, this);
}

RequestScheduler::~RequestScheduler() { Shutdown(); }

std::future<WhyNotResponse> RequestScheduler::Submit(WhyNotRequest request) {
  std::promise<WhyNotResponse> promise;
  std::future<WhyNotResponse> future = promise.get_future();
  ReleasableLock lock(mu_);
  if (shutdown_) {
    lock.Release();
    promise.set_value(
        UnavailableResponse(request.kind, "scheduler is shut down"));
    return future;
  }
  if (queue_.size() >= options_.max_queue_depth) {
    ++stats_.admission_rejects;
    lock.Release();
    MetricAdd(CounterId::kServeAdmissionRejects);
    WhyNotResponse response;
    response.kind = request.kind;
    response.status = Status::ResourceExhausted(
        StrFormat("admission control: queue depth cap %zu reached",
                  options_.max_queue_depth));
    promise.set_value(std::move(response));
    return future;
  }
  ++stats_.submitted;
  Pending pending;
  pending.request = std::move(request);
  pending.promise = std::move(promise);
  pending.seq = next_seq_++;
  pending.submitted = std::chrono::steady_clock::now();
  // Relative timeouts resolve against the submit timestamp, here and
  // nowhere else — by the time the dispatcher sees the request only the
  // absolute form remains.
  pending.deadline = EffectiveDeadline(pending.request, pending.submitted);
  queue_.push_back(std::move(pending));
  MetricAdd(CounterId::kServeRequests);
  MetricSetGauge(GaugeId::kServeQueueDepth,
                 static_cast<int64_t>(queue_.size()));
  lock.Release();
  cv_.NotifyAll();
  return future;
}

WhyNotResponse RequestScheduler::SubmitAndWait(WhyNotRequest request) {
  {
    // Fast path: after Shutdown there is nothing to wait for, so answer
    // Unavailable directly instead of building a promise/future pair just
    // to resolve it in the same call. (A shutdown racing past this check
    // is still handled by Submit.)
    MutexLock lock(mu_);
    if (shutdown_) {
      return UnavailableResponse(request.kind, "scheduler is shut down");
    }
  }
  return Submit(std::move(request)).get();
}

void RequestScheduler::Pause() {
  MutexLock lock(mu_);
  paused_ = true;
}

void RequestScheduler::Resume() {
  {
    MutexLock lock(mu_);
    paused_ = false;
  }
  cv_.NotifyAll();
}

void RequestScheduler::Shutdown() {
  // Serialize whole shutdowns: only one caller may join the dispatcher
  // (a second concurrent join would be UB), and a racing caller must not
  // return before the queue is drained — callers rely on every
  // previously submitted future being fulfilled when Shutdown returns.
  MutexLock shutdown_lock(shutdown_mu_);
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  if (dispatcher_.joinable()) dispatcher_.join();
  std::deque<Pending> leftover;
  {
    MutexLock lock(mu_);
    leftover.swap(queue_);
    MetricSetGauge(GaugeId::kServeQueueDepth, 0);
  }
  for (Pending& pending : leftover) {
    pending.promise.set_value(UnavailableResponse(
        pending.request.kind, "scheduler shut down while queued"));
  }
}

size_t RequestScheduler::queue_depth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

SchedulerStats RequestScheduler::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void RequestScheduler::DispatcherLoop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && (paused_ || queue_.empty())) cv_.Wait(mu_);
      if (shutdown_) return;
      // Head of line: highest priority; FIFO (lowest seq) within a
      // priority — the scan keeps the first maximum.
      size_t head = 0;
      for (size_t i = 1; i < queue_.size(); ++i) {
        if (queue_[i].request.priority > queue_[head].request.priority) {
          head = i;
        }
      }
      // Pull every queued request sharing the head's query point (up to
      // max_batch) into one dispatch, so SR(q)/RSL(q) is computed once.
      const Point q = queue_[head].request.q;
      const size_t cap = std::max<size_t>(options_.max_batch, 1);
      std::vector<size_t> take = {head};
      for (size_t i = 0; i < queue_.size() && take.size() < cap; ++i) {
        if (i != head && queue_[i].request.q == q) take.push_back(i);
      }
      std::sort(take.begin(), take.end());
      for (auto it = take.rbegin(); it != take.rend(); ++it) {
        batch.push_back(std::move(queue_[*it]));
        queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(*it));
      }
      std::reverse(batch.begin(), batch.end());  // Back to submission order.
      MetricSetGauge(GaugeId::kServeQueueDepth,
                     static_cast<int64_t>(queue_.size()));
    }
    ExecuteBatch(std::move(batch));
  }
}

WhyNotResponse RequestScheduler::ExecuteOne(
    const QuerySnapshot& snapshot, const WhyNotRequest& request) const {
  WhyNotResponse response;
  response.kind = request.kind;
  switch (request.kind) {
    case RequestKind::kReverseSkyline: {
      Result<std::vector<size_t>> res = snapshot.TryReverseSkyline(request.q);
      response.status = res.status();
      if (res.ok()) {
        response.payload = std::move(res).value();
        response.completed = true;
      }
      break;
    }
    case RequestKind::kExplain: {
      Result<WhyNotExplanation> res =
          snapshot.TryExplain(request.c, request.q);
      response.status = res.status();
      if (res.ok()) {
        response.payload = std::move(res).value();
        response.completed = true;
      }
      break;
    }
    case RequestKind::kModifyWhyNot: {
      Result<MwpResult> res =
          snapshot.TryModifyWhyNot(request.c, request.q, request.semantics);
      response.status = res.status();
      if (res.ok()) {
        response.payload = std::move(res).value();
        response.completed = true;
      }
      break;
    }
    case RequestKind::kModifyQuery: {
      Result<MqpResult> res =
          snapshot.TryModifyQuery(request.c, request.q, request.semantics);
      response.status = res.status();
      if (res.ok()) {
        response.payload = std::move(res).value();
        response.completed = true;
      }
      break;
    }
    case RequestKind::kSafeRegion: {
      Result<std::shared_ptr<const SafeRegionResult>> res =
          snapshot.TrySafeRegion(request.q);
      response.status = res.status();
      if (res.ok()) {
        response.payload = std::move(res).value();
        response.completed = true;
      }
      break;
    }
    case RequestKind::kModifyBoth: {
      Result<MwqResult> res =
          snapshot.TryModifyBoth(request.c, request.q, request.semantics);
      response.status = res.status();
      if (res.ok()) {
        response.payload = std::move(res).value();
        response.completed = true;
      }
      break;
    }
    case RequestKind::kModifyBothApprox: {
      Result<MwqResult> res = snapshot.TryModifyBothApprox(
          request.c, request.q, request.semantics);
      response.status = res.status();
      if (res.ok()) {
        response.payload = std::move(res).value();
        response.completed = true;
      }
      break;
    }
  }
  return response;
}

void RequestScheduler::ExecuteBatch(std::vector<Pending> batch) {
  const auto dispatch_time = std::chrono::steady_clock::now();
  const bool shared = batch.size() >= 2;
  if (shared) {
    MetricAdd(CounterId::kServeBatchShareHits,
              static_cast<uint64_t>(batch.size() - 1));
    MutexLock lock(mu_);
    stats_.batch_share_hits += batch.size() - 1;
  }

  // One snapshot for the whole batch: every request is answered against
  // the same immutable backend state, and the batch keeps it pinned even
  // if a mutation publishes a newer one mid-flight.
  const std::shared_ptr<const QuerySnapshot> snapshot = backend_->Snapshot();

  struct Slot {
    Pending pending;
    WhyNotResponse response;
    bool done = false;
  };
  std::vector<Slot> slots;
  slots.reserve(batch.size());
  for (Pending& pending : batch) {
    Slot slot;
    slot.pending = std::move(pending);
    slots.push_back(std::move(slot));
  }

  // Queue-wait accounting and in-queue deadline expiry.
  for (Slot& slot : slots) {
    const uint64_t wait_us = MicrosBetween(slot.pending.submitted,
                                           dispatch_time);
    MetricRecord(HistogramId::kServeQueueWaitMicros, wait_us);
    slot.response.kind = slot.pending.request.kind;
    slot.response.shared_batch = shared;
    slot.response.queue_wait = std::chrono::microseconds(wait_us);
    const auto& deadline = slot.pending.deadline;
    if (deadline.has_value() && *deadline < dispatch_time) {
      slot.response.status = Status::DeadlineExceeded(
          StrFormat("deadline expired after %lluus in queue",
                    static_cast<unsigned long long>(wait_us)));
      slot.done = true;
      MetricAdd(CounterId::kServeDeadlineMisses);
      MutexLock lock(mu_);
      ++stats_.deadline_misses;
    }
  }

  // Same-semantics MWQ runs fan out on the engine's ThreadPool as one
  // batch call (exact and approx separately); everything else executes
  // sequentially against the snapshot's warmed caches.
  for (const bool use_approx : {false, true}) {
    const RequestKind kind = use_approx ? RequestKind::kModifyBothApprox
                                        : RequestKind::kModifyBoth;
    for (const Semantics semantics :
         {Semantics::kBoundary, Semantics::kStrict}) {
      std::vector<size_t> group;
      for (size_t i = 0; i < slots.size(); ++i) {
        const WhyNotRequest& r = slots[i].pending.request;
        if (!slots[i].done && r.kind == kind && r.semantics == semantics) {
          group.push_back(i);
        }
      }
      if (group.size() < 2) continue;
      std::vector<size_t> whos;
      whos.reserve(group.size());
      for (size_t i : group) whos.push_back(slots[i].pending.request.c);
      Result<std::vector<MwqResult>> res = snapshot->TryModifyBothBatch(
          whos, slots[group.front()].pending.request.q, use_approx,
          semantics);
      if (!res.ok()) continue;  // Some input invalid: fall through to
                                // per-request execution for exact errors.
      for (size_t j = 0; j < group.size(); ++j) {
        Slot& slot = slots[group[j]];
        slot.response.status = Status::Ok();
        slot.response.payload = std::move(res.value()[j]);
        slot.response.completed = true;
        slot.done = true;
      }
    }
  }

  for (Slot& slot : slots) {
    if (!slot.done) {
      WhyNotResponse computed = ExecuteOne(*snapshot, slot.pending.request);
      computed.shared_batch = slot.response.shared_batch;
      computed.queue_wait = slot.response.queue_wait;
      slot.response = std::move(computed);
      slot.done = true;
    }
  }

  // Mid-run expiry: the payload (when computed) is kept, but the status
  // tells the caller the answer arrived past its deadline.
  const auto finish_time = std::chrono::steady_clock::now();
  for (Slot& slot : slots) {
    const auto& deadline = slot.pending.deadline;
    if (slot.response.status.ok() && deadline.has_value() &&
        *deadline < finish_time) {
      slot.response.status =
          Status::DeadlineExceeded("request completed after its deadline");
      MetricAdd(CounterId::kServeDeadlineMisses);
      MutexLock lock(mu_);
      ++stats_.deadline_misses;
    }
  }

  {
    MutexLock lock(mu_);
    for (const Slot& slot : slots) {
      if (slot.response.completed) ++stats_.completed;
    }
  }
  for (Slot& slot : slots) {
    slot.pending.promise.set_value(std::move(slot.response));
  }
}

}  // namespace serve
}  // namespace wnrs
