#include "serve/backend.h"

#include <utility>

#include "common/logging.h"

namespace wnrs {
namespace serve {

namespace {

/// QuerySnapshot over an EngineSnapshot: pure delegation. The wrapped
/// snapshot pins the engine core, so the engine may mutate (or even be
/// destroyed, for cores obtained earlier) without affecting this view.
class EngineQuerySnapshot final : public QuerySnapshot {
 public:
  explicit EngineQuerySnapshot(EngineSnapshot snapshot)
      : snapshot_(std::move(snapshot)) {}

  Result<std::vector<size_t>> TryReverseSkyline(const Point& q) const override {
    return snapshot_.TryReverseSkyline(q);
  }
  Result<WhyNotExplanation> TryExplain(size_t c, const Point& q) const override {
    return snapshot_.TryExplain(c, q);
  }
  Result<MwpResult> TryModifyWhyNot(size_t c, const Point& q,
                                    Semantics semantics) const override {
    return snapshot_.TryModifyWhyNot(c, q, semantics);
  }
  Result<MqpResult> TryModifyQuery(size_t c, const Point& q,
                                   Semantics semantics) const override {
    return snapshot_.TryModifyQuery(c, q, semantics);
  }
  Result<std::shared_ptr<const SafeRegionResult>> TrySafeRegion(
      const Point& q) const override {
    return snapshot_.TrySafeRegion(q);
  }
  Result<std::shared_ptr<const SafeRegionResult>> TryApproxSafeRegion(
      const Point& q) const override {
    return snapshot_.TryApproxSafeRegion(q);
  }
  Result<MwqResult> TryModifyBoth(size_t c, const Point& q,
                                  Semantics semantics) const override {
    return snapshot_.TryModifyBoth(c, q, semantics);
  }
  Result<MwqResult> TryModifyBothApprox(size_t c, const Point& q,
                                        Semantics semantics) const override {
    return snapshot_.TryModifyBothApprox(c, q, semantics);
  }
  Result<std::vector<MwqResult>> TryModifyBothBatch(
      const std::vector<size_t>& whos, const Point& q, bool use_approx,
      Semantics semantics) const override {
    return snapshot_.TryModifyBothBatch(whos, q, use_approx, semantics);
  }

 private:
  EngineSnapshot snapshot_;
};

}  // namespace

EngineBackend::EngineBackend(const WhyNotEngine* engine) : engine_(engine) {
  WNRS_CHECK(engine_ != nullptr);
}

std::shared_ptr<const QuerySnapshot> EngineBackend::Snapshot() const {
  return std::make_shared<const EngineQuerySnapshot>(engine_->Snapshot());
}

}  // namespace serve
}  // namespace wnrs
