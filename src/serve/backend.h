#ifndef WNRS_SERVE_BACKEND_H_
#define WNRS_SERVE_BACKEND_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/engine.h"

namespace wnrs {
namespace serve {

/// One immutable, concurrency-safe view of a backend's state — the unit
/// the scheduler executes a dispatch batch against. Implementations pin
/// whatever state they answer from (an engine core, a set of per-shard
/// cores) for the lifetime of the snapshot, so a batch in flight is never
/// affected by a concurrent mutation.
///
/// Only the validating Try* forms appear here: the serving stack must
/// never abort the process on a bad request, so the aborting query API
/// stays on the concrete engines.
class QuerySnapshot {
 public:
  virtual ~QuerySnapshot() = default;

  virtual Result<std::vector<size_t>> TryReverseSkyline(
      const Point& q) const = 0;
  virtual Result<WhyNotExplanation> TryExplain(size_t c,
                                               const Point& q) const = 0;
  virtual Result<MwpResult> TryModifyWhyNot(size_t c, const Point& q,
                                            Semantics semantics) const = 0;
  virtual Result<MqpResult> TryModifyQuery(size_t c, const Point& q,
                                           Semantics semantics) const = 0;
  virtual Result<std::shared_ptr<const SafeRegionResult>> TrySafeRegion(
      const Point& q) const = 0;
  virtual Result<std::shared_ptr<const SafeRegionResult>> TryApproxSafeRegion(
      const Point& q) const = 0;
  virtual Result<MwqResult> TryModifyBoth(size_t c, const Point& q,
                                          Semantics semantics) const = 0;
  virtual Result<MwqResult> TryModifyBothApprox(
      size_t c, const Point& q, Semantics semantics) const = 0;
  virtual Result<std::vector<MwqResult>> TryModifyBothBatch(
      const std::vector<size_t>& whos, const Point& q, bool use_approx,
      Semantics semantics) const = 0;
};

/// A query execution engine the serving stack schedules onto: anything
/// that can publish consistent snapshots of the seven request kinds. The
/// single-core WhyNotEngine (EngineBackend below) and the sharded engine
/// (shard::ShardedBackend) both implement it, so the scheduler, server,
/// and wire protocol are byte-identical across execution layouts.
class QueryBackend {
 public:
  virtual ~QueryBackend() = default;

  /// The current state as a shareable snapshot. O(1); safe to call
  /// concurrently with queries and mutations.
  virtual std::shared_ptr<const QuerySnapshot> Snapshot() const = 0;
};

/// QueryBackend over one WhyNotEngine. The engine must outlive the
/// backend (the backend pins snapshots, not the engine itself).
class EngineBackend : public QueryBackend {
 public:
  explicit EngineBackend(const WhyNotEngine* engine);

  std::shared_ptr<const QuerySnapshot> Snapshot() const override;

 private:
  const WhyNotEngine* engine_;
};

}  // namespace serve
}  // namespace wnrs

#endif  // WNRS_SERVE_BACKEND_H_
