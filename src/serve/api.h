#ifndef WNRS_SERVE_API_H_
#define WNRS_SERVE_API_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <variant>
#include <vector>

#include "common/status.h"
#include "core/engine.h"

namespace wnrs {
namespace serve {

/// Which engine entry point a request targets.
///
/// The numeric values are *protocol constants*: RequestKindToWire freezes
/// them into the binary wire format (src/net/protocol.h), so existing
/// values must never be renumbered — new kinds append at the end, and
/// RequestKindFromWire rejects ids it does not know, which is how a v1
/// server answers a future client's new kind with InvalidArgument instead
/// of misinterpreting it.
enum class RequestKind {
  kReverseSkyline = 0,  ///< RSL(q); ignores `c`.
  kExplain = 1,         ///< Aspect 1: culprits + frontier.
  kModifyWhyNot = 2,    ///< Algorithm 1 (MWP).
  kModifyQuery = 3,     ///< Algorithm 2 (MQP).
  kSafeRegion = 4,      ///< Exact SR(q); ignores `c`.
  kModifyBoth = 5,      ///< Algorithm 4 (MWQ, exact safe region).
  kModifyBothApprox = 6,  ///< Algorithm 4 over the approximated safe region.
};

/// Number of request kinds (wire ids are 0 .. kNumRequestKinds-1).
inline constexpr size_t kNumRequestKinds = 7;

/// Stable name for logs/JSON/metrics ("reverse_skyline", "modify_both",
/// ...). These strings are part of the observability contract: the wire
/// protocol, the scheduler metrics, and the persistence-era JSON reports
/// all use the same names.
const char* RequestKindName(RequestKind kind);

/// Frozen wire id of a request kind (today identical to the enum value;
/// the indirection is the seam that keeps the wire stable if the in-process
/// enum ever gains non-contiguous members).
uint8_t RequestKindToWire(RequestKind kind);

/// Decodes a wire id; nullopt for ids this build does not know.
std::optional<RequestKind> RequestKindFromWire(uint8_t wire_id);

/// Frozen wire id of a status code. Like the request-kind ids these are
/// protocol constants: append-only, never renumbered.
uint8_t StatusCodeToWire(StatusCode code);

/// Decodes a wire status id; nullopt for unknown ids.
std::optional<StatusCode> StatusCodeFromWire(uint8_t wire_id);

/// Frozen wire id of answer semantics (0 = boundary, 1 = strict).
uint8_t SemanticsToWire(Semantics semantics);
std::optional<Semantics> SemanticsFromWire(uint8_t wire_id);

/// One unit of work for the scheduler. Every request is validated with
/// the engine's Try* layer, so malformed input (bad customer index,
/// wrong-dimension query, missing approx store) degrades to an error
/// response instead of aborting the process.
///
/// The struct is wire-serializable: every field is either POD-like or a
/// flat coordinate vector, and the deadline can be expressed as a
/// *relative* timeout so clients never serialize a steady_clock time
/// point (meaningless across processes). src/net/protocol.h carries
/// exactly these fields.
struct WhyNotRequest {
  RequestKind kind = RequestKind::kModifyBoth;
  /// The query point q all kinds share; requests with equal q are batched
  /// so SR(q)/RSL(q) is computed once for the whole batch.
  Point q;
  /// Why-not customer index; ignored by kReverseSkyline / kSafeRegion.
  size_t c = 0;
  /// Boundary or strict answer semantics for the Modify* kinds.
  Semantics semantics = Semantics::kBoundary;
  /// Absolute deadline (in-process callers only; never crosses the wire).
  /// A request still queued past its effective deadline is answered
  /// Status::DeadlineExceeded without running; one that expires mid-run
  /// keeps its payload but is flagged the same way.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Relative deadline, resolved to an absolute one at Submit time
  /// (submit_time + timeout). This is the form wire clients use.
  /// Precedence when both are set: the *earlier* of the two effective
  /// deadlines wins — a relative timeout can only tighten an absolute
  /// deadline, never extend it.
  std::optional<std::chrono::microseconds> timeout;
  /// Higher-priority requests dispatch first (FIFO within a priority).
  int32_t priority = 0;
};

/// Resolves the deadline/timeout pair against a submit timestamp:
/// nullopt if neither is set, otherwise the earlier of `deadline` and
/// `now + timeout` (see WhyNotRequest::timeout for the rationale).
std::optional<std::chrono::steady_clock::time_point> EffectiveDeadline(
    const WhyNotRequest& request,
    std::chrono::steady_clock::time_point now);

/// The scheduler's answer. `status` is authoritative; `payload` holds the
/// one alternative selected by `kind` when the status is OK — or when it
/// is DeadlineExceeded with `completed` true (the answer arrived late but
/// is still correct for the snapshot it ran against).
///
/// The payload is a tagged variant (it replaced six parallel fields, of
/// which exactly one was ever meaningful): the alternative index is the
/// self-describing tag the wire protocol carries, and the typed accessors
/// below return the alternative or an empty default, so callers read
/// `r.mwq().best_cost` without touching std::get.
struct WhyNotResponse {
  /// Payload alternatives, in frozen wire-tag order (see PayloadTag).
  using Payload = std::variant<std::monostate,               // no payload
                               std::vector<size_t>,          // reverse skyline
                               WhyNotExplanation,            // explain
                               MwpResult,                    // MWP
                               MqpResult,                    // MQP
                               std::shared_ptr<const SafeRegionResult>,
                               MwqResult>;                   // MWQ (+approx)

  /// Wire tag of each payload alternative == its variant index. Frozen
  /// protocol constants, append-only.
  enum PayloadTag : uint8_t {
    kNoPayload = 0,
    kReverseSkylinePayload = 1,
    kExplanationPayload = 2,
    kMwpPayload = 3,
    kMqpPayload = 4,
    kSafeRegionPayload = 5,
    kMwqPayload = 6,
  };

  Status status;
  RequestKind kind = RequestKind::kModifyBoth;
  /// True iff the payload was actually computed (late answers included).
  bool completed = false;
  /// True iff this request shared a same-q dispatch batch with others.
  bool shared_batch = false;
  /// Time spent queued before dispatch.
  std::chrono::microseconds queue_wait{0};
  Payload payload;

  /// The variant index as the wire tag.
  PayloadTag payload_tag() const {
    return static_cast<PayloadTag>(payload.index());
  }

  /// Typed accessors: the held alternative, or a reference to an empty
  /// default (never aborts) when the payload holds something else —
  /// matching the old six-field struct where unselected fields were
  /// default-constructed.
  const std::vector<size_t>& reverse_skyline() const;
  const WhyNotExplanation& explanation() const;
  const MwpResult& mwp() const;
  const MqpResult& mqp() const;
  /// nullptr when the payload is not a safe region.
  std::shared_ptr<const SafeRegionResult> safe_region() const;
  const MwqResult& mwq() const;
};

}  // namespace serve
}  // namespace wnrs

#endif  // WNRS_SERVE_API_H_
