#include "serve/api.h"

#include <algorithm>

namespace wnrs {
namespace serve {

const char* RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kReverseSkyline:
      return "reverse_skyline";
    case RequestKind::kExplain:
      return "explain";
    case RequestKind::kModifyWhyNot:
      return "modify_why_not";
    case RequestKind::kModifyQuery:
      return "modify_query";
    case RequestKind::kSafeRegion:
      return "safe_region";
    case RequestKind::kModifyBoth:
      return "modify_both";
    case RequestKind::kModifyBothApprox:
      return "modify_both_approx";
  }
  return "unknown";
}

uint8_t RequestKindToWire(RequestKind kind) {
  // The wire ids are the frozen enum values; the static_asserts turn any
  // accidental renumbering into a compile error at the protocol boundary.
  static_assert(static_cast<int>(RequestKind::kReverseSkyline) == 0);
  static_assert(static_cast<int>(RequestKind::kExplain) == 1);
  static_assert(static_cast<int>(RequestKind::kModifyWhyNot) == 2);
  static_assert(static_cast<int>(RequestKind::kModifyQuery) == 3);
  static_assert(static_cast<int>(RequestKind::kSafeRegion) == 4);
  static_assert(static_cast<int>(RequestKind::kModifyBoth) == 5);
  static_assert(static_cast<int>(RequestKind::kModifyBothApprox) == 6);
  return static_cast<uint8_t>(kind);
}

std::optional<RequestKind> RequestKindFromWire(uint8_t wire_id) {
  if (wire_id >= kNumRequestKinds) return std::nullopt;
  return static_cast<RequestKind>(wire_id);
}

uint8_t StatusCodeToWire(StatusCode code) {
  // Explicit frozen ids: the switch (not a cast) is what keeps the wire
  // stable even if StatusCode is ever reordered in-process.
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 1;
    case StatusCode::kNotFound:
      return 2;
    case StatusCode::kOutOfRange:
      return 3;
    case StatusCode::kFailedPrecondition:
      return 4;
    case StatusCode::kInternal:
      return 5;
    case StatusCode::kUnimplemented:
      return 6;
    case StatusCode::kIoError:
      return 7;
    case StatusCode::kDeadlineExceeded:
      return 8;
    case StatusCode::kResourceExhausted:
      return 9;
    case StatusCode::kUnavailable:
      return 10;
  }
  return 5;  // Unknown in-process code degrades to Internal on the wire.
}

std::optional<StatusCode> StatusCodeFromWire(uint8_t wire_id) {
  switch (wire_id) {
    case 0:
      return StatusCode::kOk;
    case 1:
      return StatusCode::kInvalidArgument;
    case 2:
      return StatusCode::kNotFound;
    case 3:
      return StatusCode::kOutOfRange;
    case 4:
      return StatusCode::kFailedPrecondition;
    case 5:
      return StatusCode::kInternal;
    case 6:
      return StatusCode::kUnimplemented;
    case 7:
      return StatusCode::kIoError;
    case 8:
      return StatusCode::kDeadlineExceeded;
    case 9:
      return StatusCode::kResourceExhausted;
    case 10:
      return StatusCode::kUnavailable;
    default:
      return std::nullopt;
  }
}

uint8_t SemanticsToWire(Semantics semantics) {
  return semantics == Semantics::kStrict ? 1 : 0;
}

std::optional<Semantics> SemanticsFromWire(uint8_t wire_id) {
  if (wire_id == 0) return Semantics::kBoundary;
  if (wire_id == 1) return Semantics::kStrict;
  return std::nullopt;
}

std::optional<std::chrono::steady_clock::time_point> EffectiveDeadline(
    const WhyNotRequest& request,
    std::chrono::steady_clock::time_point now) {
  std::optional<std::chrono::steady_clock::time_point> effective =
      request.deadline;
  if (request.timeout.has_value()) {
    const auto from_timeout = now + *request.timeout;
    if (!effective.has_value() || from_timeout < *effective) {
      effective = from_timeout;
    }
  }
  return effective;
}

const std::vector<size_t>& WhyNotResponse::reverse_skyline() const {
  static const std::vector<size_t> kEmpty;
  const auto* held = std::get_if<std::vector<size_t>>(&payload);
  return held != nullptr ? *held : kEmpty;
}

const WhyNotExplanation& WhyNotResponse::explanation() const {
  static const WhyNotExplanation kEmpty;
  const auto* held = std::get_if<WhyNotExplanation>(&payload);
  return held != nullptr ? *held : kEmpty;
}

const MwpResult& WhyNotResponse::mwp() const {
  static const MwpResult kEmpty;
  const auto* held = std::get_if<MwpResult>(&payload);
  return held != nullptr ? *held : kEmpty;
}

const MqpResult& WhyNotResponse::mqp() const {
  static const MqpResult kEmpty;
  const auto* held = std::get_if<MqpResult>(&payload);
  return held != nullptr ? *held : kEmpty;
}

std::shared_ptr<const SafeRegionResult> WhyNotResponse::safe_region() const {
  const auto* held =
      std::get_if<std::shared_ptr<const SafeRegionResult>>(&payload);
  return held != nullptr ? *held : nullptr;
}

const MwqResult& WhyNotResponse::mwq() const {
  static const MwqResult kEmpty;
  const auto* held = std::get_if<MwqResult>(&payload);
  return held != nullptr ? *held : kEmpty;
}

}  // namespace serve
}  // namespace wnrs
