#!/usr/bin/env python3
"""Run clang-tidy over the project using the exported compilation database.

Usage:
  # Configure once so build/compile_commands.json exists, then:
  python3 tools/run_clang_tidy.py -p build

  # Restrict to a subtree or a few files:
  python3 tools/run_clang_tidy.py -p build src/index src/core/engine.cc

  # Only TUs that differ from the merge-base (fast pre-push loop):
  python3 tools/run_clang_tidy.py -p build --changed

The checks profile lives in the committed .clang-tidy at the repo root
(allowlist style, WarningsAsErrors: '*'); this driver only selects the
translation units, fans clang-tidy out over a process pool, and turns
"any diagnostic anywhere" into a nonzero exit for CI.

By default only first-party sources under src/ are analyzed (tests and
benches are format- and wnrs_lint-clean but carry gtest/benchmark macro
expansions that drown clang-tidy in third-party noise); pass --all to
widen to every entry in the database.

--changed narrows the selection to translation units that differ from
the merge-base with --base (default: origin/main, falling back to
main): a TU is kept when its .cc changed or its same-stem header did.
Edits to shared headers with no same-stem TU (e.g. src/common/*.h) are
not traced through includes — run without --changed before merging.

Exit codes: 0 = clean, 1 = diagnostics reported, 2 = environment/usage
error (missing database, no clang-tidy binary, bad arguments).
"""

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys

# Newest first; plain "clang-tidy" wins when present.
CLANG_TIDY_CANDIDATES = ["clang-tidy"] + [
    f"clang-tidy-{v}" for v in range(21, 13, -1)
]


def find_clang_tidy(explicit):
    if explicit:
        path = shutil.which(explicit)
        if path is None:
            print(f"error: requested binary '{explicit}' not found",
                  file=sys.stderr)
            sys.exit(2)
        return path
    for name in CLANG_TIDY_CANDIDATES:
        path = shutil.which(name)
        if path is not None:
            return path
    print("error: no clang-tidy binary on PATH (tried "
          f"{', '.join(CLANG_TIDY_CANDIDATES[:3])}, ...). Install one, or "
          "pass --clang-tidy <binary>.", file=sys.stderr)
    sys.exit(2)


def load_database(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        print(f"error: {db_path} not found — configure first "
              "(cmake -B build -S .); CMAKE_EXPORT_COMPILE_COMMANDS is "
              "always on.", file=sys.stderr)
        sys.exit(2)
    with open(db_path) as f:
        return json.load(f)


def select_files(database, root, selectors, include_all):
    """Absolute paths of TUs to analyze, deduplicated, sorted."""
    files = []
    for entry in database:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        rel = os.path.relpath(path, root)
        if rel.startswith(".."):
            continue  # Outside the repo (third-party fetch content).
        if not include_all and not rel.startswith("src" + os.sep):
            continue
        if selectors and not any(
                rel == s or rel.startswith(s.rstrip(os.sep) + os.sep)
                for s in selectors):
            continue
        files.append(path)
    return sorted(set(files))


def changed_paths(root, base_ref):
    """Repo-relative paths differing from the merge-base (plus untracked)."""
    def git(args):
        return subprocess.run(["git", "-C", root] + args,
                              stdout=subprocess.PIPE,
                              stderr=subprocess.DEVNULL, text=True)

    merge_base = None
    for ref in ([base_ref] if base_ref else ["origin/main", "main"]):
        proc = git(["merge-base", "HEAD", ref])
        if proc.returncode == 0 and proc.stdout.strip():
            merge_base = proc.stdout.strip()
            break
    if merge_base is None:
        print("error: --changed could not resolve a merge base "
              f"({'ref ' + base_ref if base_ref else 'origin/main, main'}); "
              "pass --base <ref>.", file=sys.stderr)
        sys.exit(2)

    # `git diff <commit>` compares the working tree against the commit,
    # covering both committed-on-branch and uncommitted edits; untracked
    # files (brand-new TUs) need a separate listing.
    changed = set()
    for args in (["diff", "--name-only", "-z", merge_base, "--"],
                 ["ls-files", "--others", "--exclude-standard", "-z"]):
        proc = git(args)
        if proc.returncode != 0:
            print(f"error: git {' '.join(args[:2])} failed under --changed",
                  file=sys.stderr)
            sys.exit(2)
        changed.update(p for p in proc.stdout.split("\0") if p)
    return changed


def filter_changed(files, root, changed):
    """Keep TUs whose source or same-stem header differs from the base."""
    kept = []
    for path in files:
        rel = os.path.relpath(path, root)
        stem = os.path.splitext(rel)[0]
        if rel in changed or (stem + ".h") in changed:
            kept.append(path)
    return kept


def run_one(clang_tidy, build_dir, path, extra_args):
    cmd = [clang_tidy, "-p", build_dir, "--quiet"] + extra_args + [path]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, text=True)
    # clang-tidy prints "N warnings generated" chatter on stderr even when
    # clean; keep stderr only for hard failures so CI logs stay readable.
    return path, proc.returncode, proc.stdout.strip(), proc.stderr.strip()


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("-p", "--build-dir", default="build",
                        help="build tree holding compile_commands.json "
                             "(default: build)")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary (default: newest on PATH)")
    parser.add_argument("-j", "--jobs", type=int,
                        default=os.cpu_count() or 2,
                        help="parallel clang-tidy processes")
    parser.add_argument("--all", action="store_true",
                        help="analyze every database entry, not just src/")
    parser.add_argument("--changed", action="store_true",
                        help="only TUs differing from the merge-base "
                             "(composes with selectors and --all)")
    parser.add_argument("--base", default=None, metavar="REF",
                        help="merge-base ref for --changed "
                             "(default: origin/main, then main)")
    parser.add_argument("--fix", action="store_true",
                        help="apply suggested fixes in place")
    parser.add_argument("selectors", nargs="*",
                        help="restrict to these files/directories "
                             "(repo-relative)")
    args = parser.parse_args()

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    clang_tidy = find_clang_tidy(args.clang_tidy)
    database = load_database(args.build_dir)
    files = select_files(database, root,
                         [os.path.normpath(s) for s in args.selectors],
                         args.all)
    if not files:
        print("error: no translation units matched", file=sys.stderr)
        sys.exit(2)
    if args.changed:
        files = filter_changed(files, root, changed_paths(root, args.base))
        if not files:
            # An empty diff is a legitimate clean result, not a usage
            # error: pre-push hooks run this unconditionally.
            print("OK: no selected TUs differ from the merge-base")
            return 0

    extra = ["--fix"] if args.fix else []
    print(f"{os.path.basename(clang_tidy)}: {len(files)} TUs, "
          f"{args.jobs} jobs")
    dirty = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [pool.submit(run_one, clang_tidy, args.build_dir, f, extra)
                   for f in files]
        for fut in concurrent.futures.as_completed(futures):
            path, code, out, err = fut.result()
            rel = os.path.relpath(path, root)
            if code == 0 and not out:
                continue
            dirty += 1
            print(f"--- {rel}")
            if out:
                print(out)
            if code != 0 and not out and err:
                print(err)  # Hard failure (bad flags, crash): show stderr.
    if dirty:
        print(f"\nFAIL: {dirty}/{len(files)} TUs with diagnostics")
        return 1
    print(f"\nOK: {len(files)} TUs clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
