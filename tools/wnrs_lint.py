#!/usr/bin/env python3
"""wnrs_lint: project-specific conventions clang-tidy cannot express.

Rules (ids are stable; cite them in review comments):

  abort-call
      No direct abort()/exit()/_exit()/_Exit()/quick_exit() anywhere in
      src/ except src/common/logging.cc — process death is WNRS_CHECK's
      job, so every abort carries a logged, invariant-naming message.
  serve-aborting
      No aborting (non-Try*) engine entry points under src/serve/. The
      serve layer faces untrusted requests; a bad customer index must
      degrade to a Status, never take the process down. Use the Try*
      layer exclusively.
  naked-new
      No naked new/delete in src/ outside the node-arena allowlist
      (rtree.cc and serialize.cc own the R*-tree node lifecycle;
      metrics.cc holds the deliberately leaked process-wide registry and
      its pimpl). Everything else uses containers or make_shared/
      make_unique.
  packed-lock
      No std::mutex/lock_guard/unique_lock/scoped_lock/condition_variable
      (or pthread mutexes, or .lock() calls) in the packed read-path
      files. The packed image is immutable after Freeze and its whole
      point is lock-free concurrent reads; a lock creeping in would be a
      design regression, not a bug fix.
  raw-mutex
      No raw std::mutex/std::shared_mutex/std::condition_variable/
      std::scoped_lock (or lock_guard/unique_lock/shared_lock, or the
      <mutex>/<shared_mutex>/<condition_variable> includes) anywhere
      outside src/common/annotated_mutex.h. Locking goes through the
      capability-annotated wnrs::Mutex/SharedMutex/CondVar wrappers so
      Clang Thread Safety Analysis (-Wthread-safety, the thread-safety CI
      job) sees every locking site; a raw primitive is invisible to the
      analysis. Escape hatch for deliberate exceptions:
      `// wnrs-lint: allow-raw-mutex(<reason>)` on the same line or
      within the three lines above.
  discard
      Every `(void)call(...)` / `static_cast<void>(call(...))` discard
      must carry a `// wnrs-lint: allow-discard(<reason>)` justification
      on the same line or within the three lines above. With
      [[nodiscard]] Status/Result, `(void)` is the only escape hatch —
      this rule makes each use auditable. Applies to src/, tests/,
      bench/, and examples/. Discards wrapped in EXPECT_DEATH/
      ASSERT_DEATH are exempt: the result is unreachable by definition.
  raw-file-io
      No raw file I/O — fopen, f/i/ofstream (or including <fstream>),
      open(2), or mmap — in src/ outside src/storage/ and
      src/index/serialize.cc. Everything that touches the filesystem
      goes through the storage funnel (file_io.h, storage managers, the
      slab/bundle stores) so checksumming, error mapping, and the
      persistence formats stay in one auditable layer.
  wire-packing
      Byte-order intrinsics (hton*/ntoh*/htobe*/htole*/bswap/byteswap)
      are allowed in exactly one place: src/net/wire.{h,cc}, the
      WireWriter/WireReader funnel every wire byte goes through. And
      inside src/net/ (outside wire.{h,cc}) no memcpy/bit_cast either —
      protocol code serializes through the funnel, never by hand, so the
      frozen frame format has a single auditable implementation.
  header-selfcontained
      Every header under src/ must compile on its own (IWYU-style:
      `g++ -fsyntax-only` of a TU containing just that #include), so any
      file can include exactly what it uses.

Usage:
  python3 tools/wnrs_lint.py                 # lint the whole repo
  python3 tools/wnrs_lint.py --skip-headers  # skip the (slower) header pass
  python3 tools/wnrs_lint.py --self-test     # prove each rule still fires

Exit codes: 0 = clean, 1 = violations found, 2 = environment error.
"""

import argparse
import concurrent.futures
import os
import re
import shutil
import subprocess
import sys
import tempfile

# --- Rule configuration ----------------------------------------------------

# abort-call: the one file allowed to end the process directly.
ABORT_ALLOWLIST = {"src/common/logging.cc"}
ABORT_RE = re.compile(
    r"(?<![\w.])(?:std\s*::\s*)?(?:abort|_Exit|_exit|quick_exit|exit)\s*\(")

# serve-aborting: WNRS_CHECK-aborting engine/snapshot entry points. The
# Try* forms of the same names are the sanctioned serve-layer API.
ABORTING_ENGINE_CALLS = [
    "ModifyBothConstrained", "ModifyBothApprox", "ModifyBothBatch",
    "ModifyBoth", "ModifyWhyNot", "ModifyQuery", "ReverseSkyline",
    "IsReverseSkylineMember", "CustomersInRange", "Explain",
    "ConstrainedSafeRegion", "ApproxSafeRegion", "SafeRegion",
    "LostCustomers", "MqpEvaluationCost", "NudgeToStrictMember",
    "AddProduct", "RemoveProduct", "PrecomputeApproxDsls",
]
SERVE_ABORTING_RE = re.compile(
    r"(?<![\w])(?<!Try)(?:" + "|".join(ABORTING_ENGINE_CALLS) + r")\s*\(")

# naked-new: files that legitimately own raw node/shard lifetimes, with
# the reason on record.
NAKED_NEW_ALLOWLIST = {
    # R*-tree nodes are parent-linked and freed subtree-wise; unique_ptr
    # would fight the reinsert/condense moves for zero safety gain.
    "src/index/rtree.cc",
    # Rebuilds rtree.cc's node structure when deserializing; same
    # ownership model.
    "src/index/serialize.cc",
    # STR bulk loading packs node levels bottom-up as an RStarTree friend;
    # the nodes it news are adopted by the tree it returns.
    "src/index/bulk_load.cc",
    # Process-wide registry: deliberately leaked singleton + pimpl +
    # hazard-free shard publication via atomics.
    "src/common/metrics.cc",
}
NEW_RE = re.compile(r"(?<![\w.])new\b(?!\s*\()")
PLACEMENT_NEW_RE = re.compile(r"(?<![\w.])new\s*\(")
DELETE_RE = re.compile(r"(?<![\w.])delete\b(\s*\[\s*\])?")

# packed-lock: the lock-free packed read path, by file.
PACKED_READ_PATH_FILES = {
    "src/index/packed_rtree.h", "src/index/packed_rtree.cc",
    "src/geometry/kernels.h", "src/geometry/kernels.cc",
    "src/skyline/bbs.h", "src/skyline/bbs.cc",
    "src/reverse_skyline/bbrs.h", "src/reverse_skyline/bbrs.cc",
    "src/reverse_skyline/window_query.h",
    "src/reverse_skyline/window_query.cc",
}
LOCK_RE = re.compile(
    r"std\s*::\s*(?:recursive_|shared_|timed_)*mutex\b"
    r"|std\s*::\s*(?:lock_guard|unique_lock|scoped_lock|condition_variable)"
    r"\b|pthread_mutex|\.\s*lock\s*\(")

# raw-mutex: the one header allowed to name the std locking primitives —
# it wraps them in the capability-annotated types everything else uses.
RAW_MUTEX_ALLOWLIST = {"src/common/annotated_mutex.h"}
RAW_MUTEX_RE = re.compile(
    r"std\s*::\s*(?:recursive_|shared_|timed_)*mutex\b"
    r"|std\s*::\s*condition_variable(?:_any)?\b"
    r"|std\s*::\s*(?:scoped_lock|lock_guard|unique_lock|shared_lock)\b"
    r"|#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>")
ALLOW_RAW_MUTEX_RE = re.compile(r"wnrs-lint:\s*allow-raw-mutex\(\s*\S")
# How far above the use the justification may start (comments wrap).
ALLOW_RAW_MUTEX_WINDOW = 3

# raw-file-io: only the storage layer (and the legacy text serializer it
# wraps) may open files; everything else goes through that funnel.
RAW_FILE_IO_ALLOWLIST_PREFIXES = ("src/storage/",)
RAW_FILE_IO_ALLOWLIST_FILES = {"src/index/serialize.cc"}
RAW_FILE_IO_RE = re.compile(
    r"(?<![\w.])(?:std\s*::\s*)?(?:fopen|freopen)\s*\("
    r"|(?<![\w.])(?:std\s*::\s*)?(?:i|o)?fstream\b"
    r"|(?<![\w.:])(?:open|openat|mmap|mmap64)\s*\(")
FSTREAM_INCLUDE_RE = re.compile(r"#\s*include\s*<fstream>")

# wire-packing: the one funnel allowed to reorder/reinterpret wire bytes.
WIRE_PACKING_ALLOWLIST = {"src/net/wire.h", "src/net/wire.cc"}
BYTE_ORDER_RE = re.compile(
    r"(?<![\w.])(?:hton[sl]|ntoh[sl]|hto(?:be|le)(?:16|32|64)"
    r"|(?:be|le)(?:16|32|64)toh|__builtin_bswap(?:16|32|64)"
    r"|(?:std\s*::\s*)?byteswap)\s*\(")
NET_PACKING_RE = re.compile(
    r"(?<![\w.])(?:std\s*::\s*)?(?:memcpy|bit_cast)\b")

# discard: a (void)/static_cast<void> cast applied to a *call* — an
# identifier-only discard like `(void)unused_param;` is fine.
DISCARD_RE = re.compile(
    r"(?:\(\s*void\s*\)|static_cast\s*<\s*void\s*>\s*\()"
    r"\s*[A-Za-z_][\w:.>\-]*\(")
ALLOW_DISCARD_RE = re.compile(r"wnrs-lint:\s*allow-discard\(\s*\S")
# A discard inside a gtest death assertion is self-justifying: the result
# is unreachable because the call is required to abort.
DEATH_MACRO_RE = re.compile(r"(?:EXPECT|ASSERT)_DEATH(?:_IF_SUPPORTED)?\s*\(")
# How far above the discard the justification may start (comments wrap).
ALLOW_DISCARD_WINDOW = 3

SOURCE_DIRS = ["src", "tests", "bench", "examples", "tools"]
CXX_STANDARD = "c++20"


# --- Helpers ---------------------------------------------------------------

def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving newlines so
    line numbers survive. Good enough for token-level linting; not a real
    lexer (raw strings are handled conservatively)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def repo_files(root, subdirs, exts=(".h", ".cc")):
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(exts):
                    path = os.path.join(dirpath, name)
                    yield os.path.relpath(path, root).replace(os.sep, "/")


class Linter:
    def __init__(self, root):
        self.root = root
        self.violations = []

    def report(self, rule, rel, lineno, line, detail):
        self.violations.append(
            f"{rel}:{lineno}: [{rule}] {detail}\n    {line.strip()}")

    def lint_file(self, rel):
        path = os.path.join(self.root, rel)
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        stripped = strip_comments_and_strings(raw)
        raw_lines = raw.splitlines()
        for lineno, line in enumerate(stripped.splitlines(), start=1):
            self._check_line(rel, lineno, line, raw_lines)

    def _check_line(self, rel, lineno, line, raw_lines):
        in_src = rel.startswith("src/")
        if in_src and rel not in ABORT_ALLOWLIST and ABORT_RE.search(line):
            self.report(
                "abort-call", rel, lineno, line,
                "direct process exit outside logging.cc — use WNRS_CHECK "
                "(aborting, logged) or return a Status")
        if rel.startswith("src/serve/") and SERVE_ABORTING_RE.search(line):
            self.report(
                "serve-aborting", rel, lineno, line,
                "aborting engine call in the serve layer — use the Try* "
                "variant so bad requests degrade to a Status")
        if in_src and rel not in NAKED_NEW_ALLOWLIST:
            if NEW_RE.search(line) or PLACEMENT_NEW_RE.search(line):
                self.report(
                    "naked-new", rel, lineno, line,
                    "naked new outside the node-arena allowlist — use "
                    "make_unique/make_shared or a container")
            m = DELETE_RE.search(line)
            # `= delete;` (deleted special members) is declaration syntax,
            # not a delete-expression: skip when preceded by `=`.
            if m and not re.search(r"=\s*$", line[:m.start()]):
                self.report(
                    "naked-new", rel, lineno, line,
                    "naked delete outside the node-arena allowlist")
        if (in_src and not rel.startswith(RAW_FILE_IO_ALLOWLIST_PREFIXES)
                and rel not in RAW_FILE_IO_ALLOWLIST_FILES
                and (RAW_FILE_IO_RE.search(line)
                     or FSTREAM_INCLUDE_RE.search(line))):
            self.report(
                "raw-file-io", rel, lineno, line,
                "raw file I/O outside the storage layer — go through "
                "storage/file_io.h or a storage manager so checksums and "
                "formats stay in one place")
        if rel not in WIRE_PACKING_ALLOWLIST:
            if BYTE_ORDER_RE.search(line):
                self.report(
                    "wire-packing", rel, lineno, line,
                    "byte-order intrinsic outside src/net/wire.{h,cc} — "
                    "endianness lives in the WireWriter/WireReader funnel "
                    "only")
            if rel.startswith("src/net/") and NET_PACKING_RE.search(line):
                self.report(
                    "wire-packing", rel, lineno, line,
                    "manual byte packing (memcpy/bit_cast) in the net "
                    "layer — serialize through WireWriter/WireReader so "
                    "the frame format has one implementation")
        if rel in PACKED_READ_PATH_FILES and LOCK_RE.search(line):
            self.report(
                "packed-lock", rel, lineno, line,
                "lock primitive in a packed read-path file — the frozen "
                "image must stay lock-free for concurrent readers")
        if rel not in RAW_MUTEX_ALLOWLIST and RAW_MUTEX_RE.search(line):
            lo = max(0, lineno - 1 - ALLOW_RAW_MUTEX_WINDOW)
            window = raw_lines[lo:lineno]  # Up to and including this line.
            if not any(ALLOW_RAW_MUTEX_RE.search(w) for w in window):
                self.report(
                    "raw-mutex", rel, lineno, line,
                    "raw std locking primitive outside annotated_mutex.h "
                    "— use wnrs::Mutex/SharedMutex/CondVar and the RAII "
                    "guards so thread-safety analysis sees the site, or "
                    "justify with `// wnrs-lint: allow-raw-mutex(<reason>)`")
        if DISCARD_RE.search(line) and not DEATH_MACRO_RE.search(line):
            lo = max(0, lineno - 1 - ALLOW_DISCARD_WINDOW)
            window = raw_lines[lo:lineno]  # Up to and including this line.
            if not any(ALLOW_DISCARD_RE.search(w) for w in window):
                self.report(
                    "discard", rel, lineno, line,
                    "discarded call without a justification — annotate "
                    "with `// wnrs-lint: allow-discard(<reason>)` or "
                    "handle the result")


# --- Header self-containment ----------------------------------------------

def check_header(root, rel, compiler):
    """Compiles `#include "rel"` alone; returns (rel, ok, output)."""
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".cc", delete=False) as tu:
        include = rel[len("src/"):]  # Headers are included src-relative.
        tu.write(f'#include "{include}"\n')
        tu_path = tu.name
    try:
        proc = subprocess.run(
            [compiler, f"-std={CXX_STANDARD}", "-fsyntax-only", "-Wall",
             "-Wextra", "-I", os.path.join(root, "src"), "-x", "c++",
             tu_path],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        return rel, proc.returncode == 0, proc.stdout.strip()
    finally:
        os.unlink(tu_path)


def lint_headers(root, jobs):
    compiler = shutil.which("g++") or shutil.which("c++") or \
        shutil.which("clang++")
    if compiler is None:
        print("error: no C++ compiler for the header-selfcontained pass "
              "(pass --skip-headers to skip)", file=sys.stderr)
        sys.exit(2)
    headers = [f for f in repo_files(root, ["src"], exts=(".h",))]
    violations = []
    with concurrent.futures.ThreadPoolExecutor(jobs) as pool:
        for rel, ok, output in pool.map(
                lambda h: check_header(root, h, compiler), headers):
            if not ok:
                first = output.splitlines()[0] if output else "(no output)"
                violations.append(
                    f"{rel}:1: [header-selfcontained] header does not "
                    f"compile standalone\n    {first}")
    return violations, len(headers)


# --- Self test -------------------------------------------------------------

SELF_TEST_SEEDS = {
    # rule id -> (repo-relative path, file contents that must trip it)
    "abort-call": ("src/core/bad_abort.cc",
                   "void f() { abort(); }\n"),
    "serve-aborting": ("src/serve/bad_call.cc",
                       "void f(E* e, P q) { e->ModifyBoth(1, q); }\n"),
    "naked-new": ("src/core/bad_new.cc",
                  "int* f() { return new int(7); }\n"),
    "packed-lock": ("src/index/packed_rtree.cc",
                    "#include <mutex>\nstd::mutex freeze_mu;\n"),
    "raw-mutex": ("src/core/bad_mutex.cc",
                  "#include <mutex>\nstd::mutex mu;\n"),
    "discard": ("src/core/bad_discard.cc",
                "void f() { (void)Compute(); }\n"),
    "raw-file-io": ("src/core/bad_io.cc",
                    '#include <cstdio>\n'
                    'void f() { std::fopen("x", "rb"); }\n'),
    "wire-packing": ("src/net/bad_packing.cc",
                     "#include <arpa/inet.h>\n"
                     "unsigned short f(unsigned short v) "
                     "{ return htons(v); }\n"),
}


def self_test():
    """Seeds one violation per rule into a scratch tree and asserts the
    linter catches each — the CI proof that the rules still fire."""
    failures = []
    for rule, (rel, contents) in sorted(SELF_TEST_SEEDS.items()):
        with tempfile.TemporaryDirectory() as scratch:
            path = os.path.join(scratch, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w") as f:
                f.write(contents)
            linter = Linter(scratch)
            linter.lint_file(rel)
            if not any(f"[{rule}]" in v for v in linter.violations):
                failures.append(f"rule '{rule}' did not fire on seeded "
                                f"violation in {rel}")
            else:
                print(f"self-test ok: [{rule}] fires")
    # And a justified discard must NOT fire.
    with tempfile.TemporaryDirectory() as scratch:
        rel = "src/core/good_discard.cc"
        path = os.path.join(scratch, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as f:
            f.write("void f() {\n"
                    "  // wnrs-lint: allow-discard(cache prewarm)\n"
                    "  (void)Compute();\n"
                    "}\n")
        linter = Linter(scratch)
        linter.lint_file(rel)
        if any("[discard]" in v for v in linter.violations):
            failures.append("justified allow-discard still fired")
        else:
            print("self-test ok: allow-discard justification honored")
    # And a justified raw mutex must NOT fire.
    with tempfile.TemporaryDirectory() as scratch:
        rel = "src/core/good_mutex.cc"
        path = os.path.join(scratch, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as f:
            f.write("// wnrs-lint: allow-raw-mutex(FFI boundary needs the "
                    "std type)\n"
                    "#include <mutex>\n"
                    "std::mutex interop_mu;\n")
        linter = Linter(scratch)
        linter.lint_file(rel)
        if any("[raw-mutex]" in v for v in linter.violations):
            failures.append("justified allow-raw-mutex still fired")
        else:
            print("self-test ok: allow-raw-mutex justification honored")
    for f_ in failures:
        print(f"SELF-TEST FAIL: {f_}")
    return 1 if failures else 0


# --- Main ------------------------------------------------------------------

def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--skip-headers", action="store_true",
                        help="skip the header-selfcontained compile pass")
    parser.add_argument("-j", "--jobs", type=int,
                        default=os.cpu_count() or 2)
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on a seeded violation")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    linter = Linter(root)
    files = list(repo_files(root, SOURCE_DIRS))
    if not files:
        print(f"error: no sources found under {root}", file=sys.stderr)
        return 2
    for rel in files:
        linter.lint_file(rel)
    violations = linter.violations
    n_headers = 0
    if not args.skip_headers:
        header_violations, n_headers = lint_headers(root, args.jobs)
        violations += header_violations

    for v in violations:
        print(v)
    if violations:
        print(f"\nFAIL: {len(violations)} violation(s) across "
              f"{len(files)} files")
        return 1
    print(f"OK: {len(files)} files, {n_headers} standalone headers clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
