#!/usr/bin/env python3
"""Compare bench --json outputs against a committed baseline.

Usage:
  # Gate a fresh run of the short-mode benches against the baseline:
  python3 tools/check_bench_regression.py \
      --baseline bench/baseline.json --current <dir-with-*.json>

  # Regenerate the baseline from a directory of bench outputs:
  python3 tools/check_bench_regression.py \
      --current <dir-with-*.json> --write-baseline bench/baseline.json

The gate is intentionally generous: CI runners and dev machines differ
widely, so wall-clock times only fail when they exceed the baseline by
--wall-tolerance (default 2.0x) AND the baseline time is above a noise
floor (--wall-floor-ms, default 50 ms — sub-50 ms configs are dominated
by scheduling jitter). Work counters (R*-tree node reads, dominance
tests, ...) are deterministic for a fixed seed, so they use the tighter
--counter-tolerance (default 1.5x) with an absolute floor of
--counter-floor (default 1000) to ignore churn in tiny counts.

A baseline config missing from the current run is an error: a bench that
silently stops running a configuration must not pass the gate. The
converse also fails by default: a bench or config present in the current
run but absent from the baseline means someone added a benchmark without
regenerating bench/baseline.json, and an ungated benchmark is a silent
hole in the perf gate. Pass --allow-new to downgrade those to warnings
(useful while iterating locally before the baseline refresh).

Counters whose values depend on the host (thread-pool task splits,
freeze nanoseconds) or on scheduling interleavings (the serve.* counters,
cache hit/miss splits under concurrent callers) are skipped entirely;
benches listed in NONDETERMINISTIC_BENCHES gate on wall time only.

Improvement gates compare two configs *within the current run*, so they
are immune to cross-host noise. Each (repeatable) spec

  --improvement BENCH/FAST/SLOW[:METRIC[:FLOOR]][@MINCORES]

asserts that config FAST of bench BENCH scores strictly less than config
SLOW times FLOOR (default 1.0) on METRIC (default wall_ms; counter names
work too). The packed-read-path bench uses this to make "packed beats
dynamic" a CI invariant rather than a claim.

A trailing @MINCORES guards speedup gates that only hold with real
parallelism: the spec is skipped (with a printed notice) when the bench
report's `host_cores` field — std::thread::hardware_concurrency() at run
time, recorded by BenchReporter — is below MINCORES. A report without
the field counts as unknown and is skipped too. Use it for gates like
"4 shards beat one engine" or "4 threads beat 1", which are true on the
4-core CI runners but meaningless on a 1-core dev container.

Exit codes: 0 = pass, 1 = regression or missing data, 2 = usage error.
"""

import argparse
import json
import pathlib
import sys

# Counters that legitimately vary across hosts or runs: thread-pool work
# splitting depends on core count, and the serve/cache counters depend on
# which requests happened to share a dispatch batch or find a warm cache.
HOST_DEPENDENT_COUNTERS = {
    "packed_freeze_ns",
    "pool_parallel_fors",
    "pool_tasks_executed",
    "rsl_cache_hits",
    "rsl_cache_misses",
    "rsl_cache_evictions",
    "serve_requests",
    "serve_admission_rejects",
    "serve_deadline_misses",
    "serve_batch_share_hits",
}

# Benches whose work counters are interleaving-dependent end to end
# (concurrent callers racing over shared caches): gate on wall time only.
NONDETERMINISTIC_BENCHES = {"serve_throughput", "parallel_scaling", "loadgen"}


def load_current(current_dir):
    """Load every *.json bench report in current_dir, keyed by bench name."""
    benches = {}
    paths = sorted(pathlib.Path(current_dir).glob("*.json"))
    if not paths:
        print(f"error: no *.json files found in {current_dir}", file=sys.stderr)
        sys.exit(2)
    for path in paths:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: cannot parse {path}: {e}", file=sys.stderr)
            sys.exit(1)
        name = doc.get("bench")
        if not name or "records" not in doc:
            print(f"error: {path} is not a bench report (missing 'bench'/"
                  f"'records')", file=sys.stderr)
            sys.exit(1)
        if name in benches:
            print(f"error: duplicate bench '{name}' (from {path})",
                  file=sys.stderr)
            sys.exit(1)
        benches[name] = doc
    return benches


def records_by_config(doc):
    return {rec["config"]: rec for rec in doc.get("records", [])}


def parse_improvement(spec):
    """Parses BENCH/FAST/SLOW[:METRIC[:FLOOR]][@MINCORES] into its parts."""
    min_cores = 0
    if "@" in spec:
        spec, _, cores_part = spec.rpartition("@")
        try:
            min_cores = int(cores_part)
        except ValueError:
            print(f"error: bad @MINCORES in --improvement spec "
                  f"'{spec}@{cores_part}'", file=sys.stderr)
            sys.exit(2)
    path = spec
    metric = "wall_ms"
    floor = 1.0
    if ":" in spec:
        parts = spec.split(":")
        if len(parts) > 3:
            print(f"error: malformed --improvement spec '{spec}'",
                  file=sys.stderr)
            sys.exit(2)
        path = parts[0]
        if len(parts) >= 2 and parts[1]:
            metric = parts[1]
        if len(parts) == 3:
            try:
                floor = float(parts[2])
            except ValueError:
                print(f"error: bad floor in --improvement spec '{spec}'",
                      file=sys.stderr)
                sys.exit(2)
    pieces = path.split("/")
    if len(pieces) != 3 or not all(pieces):
        print(f"error: malformed --improvement spec '{spec}' "
              f"(want BENCH/FAST/SLOW[:METRIC[:FLOOR]][@MINCORES])",
              file=sys.stderr)
        sys.exit(2)
    return pieces[0], pieces[1], pieces[2], metric, floor, min_cores


def metric_value(rec, metric):
    if metric == "wall_ms":
        return float(rec.get("wall_ms", 0.0))
    counters = rec.get("counters", {})
    if metric not in counters:
        return None
    return float(counters[metric])


def check_improvements(current, specs):
    """Within-run gates: FAST must score < SLOW * FLOOR on METRIC."""
    failures = []
    for spec in specs:
        bench, fast_cfg, slow_cfg, metric, floor, min_cores = \
            parse_improvement(spec)
        doc = current.get(bench)
        if doc is None:
            failures.append(f"{bench}: bench missing, cannot check "
                            f"improvement '{spec}'")
            continue
        if min_cores:
            host_cores = int(doc.get("host_cores", 0))
            if host_cores < min_cores:
                print(f"improvement skipped: '{spec}' needs >= {min_cores} "
                      f"cores, bench ran on {host_cores or 'unknown'}")
                continue
        recs = records_by_config(doc)
        missing = [c for c in (fast_cfg, slow_cfg) if c not in recs]
        if missing:
            failures.append(f"{bench}: config(s) {missing} missing, cannot "
                            f"check improvement '{spec}'")
            continue
        fast_val = metric_value(recs[fast_cfg], metric)
        slow_val = metric_value(recs[slow_cfg], metric)
        if fast_val is None or slow_val is None:
            failures.append(f"{bench}: metric '{metric}' missing, cannot "
                            f"check improvement '{spec}'")
            continue
        if fast_val >= slow_val * floor:
            failures.append(
                f"{bench}: {fast_cfg} {metric} {fast_val:g} >= "
                f"{slow_cfg} {slow_val:g} x {floor:g} — expected improvement "
                f"did not hold")
        else:
            print(f"improvement ok: {bench}/{fast_cfg} {metric} {fast_val:g} "
                  f"< {slow_cfg} {slow_val:g} x {floor:g}")
    return failures


def check(baseline, current, args):
    failures = []
    warnings = []
    new_entries = []
    for bench_name, base_doc in sorted(baseline.get("benches", {}).items()):
        cur_doc = current.get(bench_name)
        if cur_doc is None:
            failures.append(f"{bench_name}: bench missing from current run")
            continue
        base_recs = records_by_config(base_doc)
        cur_recs = records_by_config(cur_doc)
        for config, base_rec in sorted(base_recs.items()):
            cur_rec = cur_recs.get(config)
            if cur_rec is None:
                failures.append(
                    f"{bench_name}/{config}: config missing from current run")
                continue
            base_ms = float(base_rec.get("wall_ms", 0.0))
            cur_ms = float(cur_rec.get("wall_ms", 0.0))
            if base_ms >= args.wall_floor_ms and \
                    cur_ms > base_ms * args.wall_tolerance:
                failures.append(
                    f"{bench_name}/{config}: wall_ms {cur_ms:.1f} > "
                    f"{base_ms:.1f} x {args.wall_tolerance:.2f}")
            elif base_ms >= args.wall_floor_ms and \
                    cur_ms * args.wall_tolerance < base_ms:
                warnings.append(
                    f"{bench_name}/{config}: wall_ms {cur_ms:.1f} is "
                    f">{args.wall_tolerance:.2f}x faster than baseline "
                    f"{base_ms:.1f} — consider regenerating the baseline")
            if bench_name in NONDETERMINISTIC_BENCHES:
                continue
            base_counters = base_rec.get("counters", {})
            cur_counters = cur_rec.get("counters", {})
            for key, base_val in sorted(base_counters.items()):
                if key in HOST_DEPENDENT_COUNTERS:
                    continue
                base_val = int(base_val)
                cur_val = int(cur_counters.get(key, 0))
                if base_val < args.counter_floor and \
                        cur_val < args.counter_floor:
                    continue
                if cur_val > base_val * args.counter_tolerance:
                    failures.append(
                        f"{bench_name}/{config}: counter {key} {cur_val} > "
                        f"{base_val} x {args.counter_tolerance:.2f}")
                elif base_val > 0 and \
                        cur_val * args.counter_tolerance < base_val:
                    warnings.append(
                        f"{bench_name}/{config}: counter {key} dropped "
                        f"{base_val} -> {cur_val} — verify the work did not "
                        f"silently disappear")
        for config in sorted(set(cur_recs) - set(base_recs)):
            new_entries.append(
                f"{bench_name}/{config}: new config, not in baseline")
    for bench_name in sorted(set(current) - set(baseline.get("benches", {}))):
        new_entries.append(f"{bench_name}: new bench, not in baseline")
    if args.allow_new:
        warnings.extend(f"{e} (not gated)" for e in new_entries)
    else:
        failures.extend(
            f"{e} — regenerate bench/baseline.json (--write-baseline) or "
            f"pass --allow-new" for e in new_entries)
    return failures, warnings


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", help="committed baseline JSON")
    parser.add_argument("--current", required=True,
                        help="directory of bench --json outputs")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="write a fresh baseline from --current and exit")
    parser.add_argument("--wall-tolerance", type=float, default=2.0)
    parser.add_argument("--wall-floor-ms", type=float, default=50.0)
    parser.add_argument("--counter-tolerance", type=float, default=1.5)
    parser.add_argument("--counter-floor", type=int, default=1000)
    parser.add_argument("--allow-new", action="store_true",
                        help="downgrade 'bench/config not in baseline' from "
                             "a failure to a warning (default: fail, so new "
                             "benchmarks cannot land without baseline "
                             "entries)")
    parser.add_argument("--only", action="append", default=[], metavar="BENCH",
                        help="restrict the baseline comparison to the named "
                             "bench(es): other baseline entries are not "
                             "required to be present in --current, and other "
                             "current benches are ignored. For partial runs "
                             "like the serve-loadtest job, which produces "
                             "only loadgen.json. Repeatable.")
    parser.add_argument("--improvement", action="append", default=[],
                        metavar="BENCH/FAST/SLOW[:METRIC[:FLOOR]][@MINCORES]",
                        help="require config FAST to beat config SLOW within "
                             "the current run — a same-host comparison that "
                             "is immune to runner speed variance, unlike the "
                             "cross-run baseline gate. BENCH is the JSON "
                             "stem under --current (e.g. packed_read_path "
                             "for packed_read_path.json); FAST and SLOW are "
                             "'config' names inside its records; METRIC is "
                             "wall_ms (default) or any counter key; FLOOR "
                             "is the minimum SLOW/FAST ratio (default 1.0, "
                             "so 1.10 demands FAST win by >=10%%); a "
                             "trailing @MINCORES skips the spec when the "
                             "report's host_cores is below MINCORES (for "
                             "parallel-speedup gates on small runners). "
                             "Repeatable; every spec must pass. Example: "
                             "--improvement packed_read_path/bbs-packed/"
                             "bbs-dynamic:wall_ms:1.05")
    args = parser.parse_args()

    current = load_current(args.current)
    if args.only:
        unknown = sorted(set(args.only) - set(current))
        if unknown:
            print(f"error: --only bench(es) not in --current: "
                  f"{', '.join(unknown)}", file=sys.stderr)
            return 1
        current = {k: v for k, v in current.items() if k in args.only}

    improvement_failures = check_improvements(current, args.improvement)

    if args.write_baseline:
        if improvement_failures:
            for f_ in improvement_failures:
                print(f"FAIL: {f_}")
            print("refusing to write a baseline from a run that violates "
                  "its improvement gates")
            return 1
        doc = {"comment": "Generated by tools/check_bench_regression.py "
                          "--write-baseline from short-mode bench runs.",
               "benches": current}
        with open(args.write_baseline, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.write_baseline} "
              f"({len(current)} benches)")
        return 0

    if not args.baseline:
        parser.error("--baseline is required unless --write-baseline is given")
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read baseline {args.baseline}: {e}",
              file=sys.stderr)
        return 1
    if args.only:
        baseline = dict(baseline)
        baseline["benches"] = {k: v
                               for k, v in baseline.get("benches", {}).items()
                               if k in args.only}

    failures, warnings = check(baseline, current, args)
    failures.extend(improvement_failures)
    for w in warnings:
        print(f"warning: {w}")
    for f_ in failures:
        print(f"FAIL: {f_}")
    n_benches = len(baseline.get("benches", {}))
    if failures:
        print(f"\n{len(failures)} regression(s) across {n_benches} "
              f"baselined benches")
        return 1
    print(f"\nOK: {n_benches} baselined benches within tolerance "
          f"({len(warnings)} warnings)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
