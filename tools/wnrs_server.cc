// The wnrs serving binary: loads (or generates) an engine and serves the
// binary wire protocol of src/net/ on a TCP port until SIGINT/SIGTERM.
//
//   wnrs_server --bundle <dir>            serve a persisted engine bundle
//   wnrs_server --generate <n>[:<seed>]   serve a generated CarDb engine
//
// Options:
//   --port <p>        TCP port (default 0 = ephemeral)
//   --port-file <f>   write the bound port to <f> (CI handshake)
//   --max-queue <n>   scheduler admission-control depth (default 1024)
//   --threads <n>     engine worker threads (default 1)
//   --approx <k>      precompute approx DSLs with parameter k (enables
//                     modify_both_approx requests)
//   --shards <n>      serve through the sharded engine with n STR tiles
//                     (default 0 = single-core engine); the wire protocol
//                     and every answer are identical either way
//
// The load generator (bench/bench_loadgen.cc) is the matching client.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <semaphore>
#include <string>

#include "core/engine.h"
#include "data/generators.h"
#include "net/server.h"
#include "shard/sharded_backend.h"
#include "shard/sharded_engine.h"
#include "storage/file_io.h"

namespace {

using namespace wnrs;

int Usage() {
  std::fprintf(
      stderr,
      "usage: wnrs_server (--bundle <dir> | --generate <n>[:<seed>])\n"
      "         [--port <p>] [--port-file <f>] [--max-queue <n>]\n"
      "         [--threads <n>] [--approx <k>] [--shards <n>]\n");
  return 2;
}

// Signal handlers may only touch async-signal-safe state; the semaphore
// release is the sanctioned way to wake the main thread.
std::binary_semaphore g_shutdown{0};

void HandleSignal(int) { g_shutdown.release(); }

}  // namespace

int main(int argc, char** argv) {
  std::string bundle;
  size_t generate_n = 0;
  uint64_t generate_seed = 5;
  uint16_t port = 0;
  std::string port_file;
  size_t max_queue = 1024;
  size_t threads = 1;
  size_t approx_k = 0;
  size_t shards = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--bundle" && has_value) {
      bundle = argv[++i];
    } else if (arg == "--generate" && has_value) {
      const std::string spec = argv[++i];
      const size_t colon = spec.find(':');
      generate_n = std::strtoull(spec.c_str(), nullptr, 10);
      if (colon != std::string::npos) {
        generate_seed = std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
      }
    } else if (arg == "--port" && has_value) {
      port = static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--port-file" && has_value) {
      port_file = argv[++i];
    } else if (arg == "--max-queue" && has_value) {
      max_queue = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--threads" && has_value) {
      threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--approx" && has_value) {
      approx_k = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--shards" && has_value) {
      shards = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "wnrs_server: unknown or incomplete flag '%s'\n",
                   arg.c_str());
      return Usage();
    }
  }
  if (bundle.empty() == (generate_n == 0)) return Usage();

  WhyNotEngineOptions engine_options;
  engine_options.num_threads = threads;
  std::unique_ptr<WhyNotEngine> engine;
  if (!bundle.empty()) {
    auto opened = WhyNotEngine::Open(bundle, engine_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "wnrs_server: cannot open bundle %s: %s\n",
                   bundle.c_str(), opened.status().ToString().c_str());
      return 1;
    }
    engine = std::move(opened).value();
  } else {
    engine = std::make_unique<WhyNotEngine>(
        GenerateCarDb(generate_n, generate_seed), engine_options);
  }
  // --shards routes the same datasets through the sharded engine behind
  // the QueryBackend seam; the single engine is only a loader in that
  // mode and is dropped once the tiles are frozen.
  std::unique_ptr<shard::ShardedEngine> sharded;
  std::shared_ptr<const serve::QueryBackend> backend;
  size_t num_products = engine->products().size();
  size_t num_customers = engine->customers().size();
  if (shards > 0) {
    shard::ShardedEngineOptions sharded_options;
    sharded_options.num_shards = shards;
    sharded_options.engine = engine_options;
    if (engine->shared_relation()) {
      sharded = std::make_unique<shard::ShardedEngine>(engine->products(),
                                                       sharded_options);
    } else {
      sharded = std::make_unique<shard::ShardedEngine>(
          engine->products(), engine->customers(), sharded_options);
    }
    engine.reset();
    if (approx_k > 0) sharded->PrecomputeApproxDsls(approx_k);
    backend = std::make_shared<shard::ShardedBackend>(sharded.get());
  } else {
    if (approx_k > 0) engine->PrecomputeApproxDsls(approx_k);
    backend = std::make_shared<serve::EngineBackend>(engine.get());
  }

  net::ServerOptions server_options;
  server_options.port = port;
  server_options.scheduler.max_queue_depth = max_queue;
  auto server = net::WnrsServer::Start(backend, server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "wnrs_server: cannot start: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  if (!port_file.empty()) {
    const Status written = storage::WriteStringToFile(
        port_file, std::to_string(server.value()->port()) + "\n");
    if (!written.ok()) {
      std::fprintf(stderr, "wnrs_server: cannot write port file: %s\n",
                   written.ToString().c_str());
      return 1;
    }
  }
  std::fprintf(stderr,
               "wnrs_server: serving %zu products / %zu customers on port %u "
               "(max queue %zu, shards %zu)\n",
               num_products, num_customers,
               static_cast<unsigned>(server.value()->port()), max_queue,
               shards > 0 ? sharded->num_shards() : 1);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  g_shutdown.acquire();
  std::fprintf(stderr, "wnrs_server: shutting down\n");
  server.value()->Stop();
  const net::ServerStats stats = server.value()->stats();
  std::fprintf(stderr,
               "wnrs_server: %llu connections, %llu frames, %llu responses, "
               "%llu decode errors\n",
               static_cast<unsigned long long>(stats.connections_accepted),
               static_cast<unsigned long long>(stats.frames_received),
               static_cast<unsigned long long>(stats.responses_sent),
               static_cast<unsigned long long>(stats.decode_errors));
  return 0;
}
