file(REMOVE_RECURSE
  "CMakeFiles/reposition_test.dir/reposition_test.cc.o"
  "CMakeFiles/reposition_test.dir/reposition_test.cc.o.d"
  "reposition_test"
  "reposition_test.pdb"
  "reposition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reposition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
