# Empty dependencies file for reposition_test.
# This may be replaced when dependencies are built.
