file(REMOVE_RECURSE
  "CMakeFiles/mqp_test.dir/mqp_test.cc.o"
  "CMakeFiles/mqp_test.dir/mqp_test.cc.o.d"
  "mqp_test"
  "mqp_test.pdb"
  "mqp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
