# Empty dependencies file for prospect_test.
# This may be replaced when dependencies are built.
