file(REMOVE_RECURSE
  "CMakeFiles/prospect_test.dir/prospect_test.cc.o"
  "CMakeFiles/prospect_test.dir/prospect_test.cc.o.d"
  "prospect_test"
  "prospect_test.pdb"
  "prospect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prospect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
