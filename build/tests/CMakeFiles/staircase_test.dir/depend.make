# Empty dependencies file for staircase_test.
# This may be replaced when dependencies are built.
