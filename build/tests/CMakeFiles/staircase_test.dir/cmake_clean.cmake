file(REMOVE_RECURSE
  "CMakeFiles/staircase_test.dir/staircase_test.cc.o"
  "CMakeFiles/staircase_test.dir/staircase_test.cc.o.d"
  "staircase_test"
  "staircase_test.pdb"
  "staircase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staircase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
