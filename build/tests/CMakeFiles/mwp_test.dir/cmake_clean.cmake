file(REMOVE_RECURSE
  "CMakeFiles/mwp_test.dir/mwp_test.cc.o"
  "CMakeFiles/mwp_test.dir/mwp_test.cc.o.d"
  "mwp_test"
  "mwp_test.pdb"
  "mwp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
