# Empty compiler generated dependencies file for safe_region_test.
# This may be replaced when dependencies are built.
