file(REMOVE_RECURSE
  "CMakeFiles/safe_region_test.dir/safe_region_test.cc.o"
  "CMakeFiles/safe_region_test.dir/safe_region_test.cc.o.d"
  "safe_region_test"
  "safe_region_test.pdb"
  "safe_region_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_region_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
