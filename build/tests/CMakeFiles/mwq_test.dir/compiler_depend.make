# Empty compiler generated dependencies file for mwq_test.
# This may be replaced when dependencies are built.
