file(REMOVE_RECURSE
  "CMakeFiles/mwq_test.dir/mwq_test.cc.o"
  "CMakeFiles/mwq_test.dir/mwq_test.cc.o.d"
  "mwq_test"
  "mwq_test.pdb"
  "mwq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
