file(REMOVE_RECURSE
  "CMakeFiles/ddr_test.dir/ddr_test.cc.o"
  "CMakeFiles/ddr_test.dir/ddr_test.cc.o.d"
  "ddr_test"
  "ddr_test.pdb"
  "ddr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
