# Empty compiler generated dependencies file for ddr_test.
# This may be replaced when dependencies are built.
