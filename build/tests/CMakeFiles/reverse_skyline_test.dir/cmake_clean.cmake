file(REMOVE_RECURSE
  "CMakeFiles/reverse_skyline_test.dir/reverse_skyline_test.cc.o"
  "CMakeFiles/reverse_skyline_test.dir/reverse_skyline_test.cc.o.d"
  "reverse_skyline_test"
  "reverse_skyline_test.pdb"
  "reverse_skyline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reverse_skyline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
