file(REMOVE_RECURSE
  "CMakeFiles/rectangle_test.dir/rectangle_test.cc.o"
  "CMakeFiles/rectangle_test.dir/rectangle_test.cc.o.d"
  "rectangle_test"
  "rectangle_test.pdb"
  "rectangle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rectangle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
