# Empty compiler generated dependencies file for rectangle_test.
# This may be replaced when dependencies are built.
