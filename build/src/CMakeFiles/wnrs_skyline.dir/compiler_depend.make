# Empty compiler generated dependencies file for wnrs_skyline.
# This may be replaced when dependencies are built.
