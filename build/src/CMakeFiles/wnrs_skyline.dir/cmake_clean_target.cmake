file(REMOVE_RECURSE
  "libwnrs_skyline.a"
)
