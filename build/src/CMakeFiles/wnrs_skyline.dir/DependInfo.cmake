
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/skyline/approx.cc" "src/CMakeFiles/wnrs_skyline.dir/skyline/approx.cc.o" "gcc" "src/CMakeFiles/wnrs_skyline.dir/skyline/approx.cc.o.d"
  "/root/repo/src/skyline/bbs.cc" "src/CMakeFiles/wnrs_skyline.dir/skyline/bbs.cc.o" "gcc" "src/CMakeFiles/wnrs_skyline.dir/skyline/bbs.cc.o.d"
  "/root/repo/src/skyline/bnl.cc" "src/CMakeFiles/wnrs_skyline.dir/skyline/bnl.cc.o" "gcc" "src/CMakeFiles/wnrs_skyline.dir/skyline/bnl.cc.o.d"
  "/root/repo/src/skyline/ddr.cc" "src/CMakeFiles/wnrs_skyline.dir/skyline/ddr.cc.o" "gcc" "src/CMakeFiles/wnrs_skyline.dir/skyline/ddr.cc.o.d"
  "/root/repo/src/skyline/dnc.cc" "src/CMakeFiles/wnrs_skyline.dir/skyline/dnc.cc.o" "gcc" "src/CMakeFiles/wnrs_skyline.dir/skyline/dnc.cc.o.d"
  "/root/repo/src/skyline/dynamic.cc" "src/CMakeFiles/wnrs_skyline.dir/skyline/dynamic.cc.o" "gcc" "src/CMakeFiles/wnrs_skyline.dir/skyline/dynamic.cc.o.d"
  "/root/repo/src/skyline/sfs.cc" "src/CMakeFiles/wnrs_skyline.dir/skyline/sfs.cc.o" "gcc" "src/CMakeFiles/wnrs_skyline.dir/skyline/sfs.cc.o.d"
  "/root/repo/src/skyline/staircase.cc" "src/CMakeFiles/wnrs_skyline.dir/skyline/staircase.cc.o" "gcc" "src/CMakeFiles/wnrs_skyline.dir/skyline/staircase.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wnrs_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wnrs_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wnrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
