file(REMOVE_RECURSE
  "CMakeFiles/wnrs_skyline.dir/skyline/approx.cc.o"
  "CMakeFiles/wnrs_skyline.dir/skyline/approx.cc.o.d"
  "CMakeFiles/wnrs_skyline.dir/skyline/bbs.cc.o"
  "CMakeFiles/wnrs_skyline.dir/skyline/bbs.cc.o.d"
  "CMakeFiles/wnrs_skyline.dir/skyline/bnl.cc.o"
  "CMakeFiles/wnrs_skyline.dir/skyline/bnl.cc.o.d"
  "CMakeFiles/wnrs_skyline.dir/skyline/ddr.cc.o"
  "CMakeFiles/wnrs_skyline.dir/skyline/ddr.cc.o.d"
  "CMakeFiles/wnrs_skyline.dir/skyline/dnc.cc.o"
  "CMakeFiles/wnrs_skyline.dir/skyline/dnc.cc.o.d"
  "CMakeFiles/wnrs_skyline.dir/skyline/dynamic.cc.o"
  "CMakeFiles/wnrs_skyline.dir/skyline/dynamic.cc.o.d"
  "CMakeFiles/wnrs_skyline.dir/skyline/sfs.cc.o"
  "CMakeFiles/wnrs_skyline.dir/skyline/sfs.cc.o.d"
  "CMakeFiles/wnrs_skyline.dir/skyline/staircase.cc.o"
  "CMakeFiles/wnrs_skyline.dir/skyline/staircase.cc.o.d"
  "libwnrs_skyline.a"
  "libwnrs_skyline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wnrs_skyline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
