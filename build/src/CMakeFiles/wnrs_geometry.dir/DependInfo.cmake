
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/dominance.cc" "src/CMakeFiles/wnrs_geometry.dir/geometry/dominance.cc.o" "gcc" "src/CMakeFiles/wnrs_geometry.dir/geometry/dominance.cc.o.d"
  "/root/repo/src/geometry/point.cc" "src/CMakeFiles/wnrs_geometry.dir/geometry/point.cc.o" "gcc" "src/CMakeFiles/wnrs_geometry.dir/geometry/point.cc.o.d"
  "/root/repo/src/geometry/rectangle.cc" "src/CMakeFiles/wnrs_geometry.dir/geometry/rectangle.cc.o" "gcc" "src/CMakeFiles/wnrs_geometry.dir/geometry/rectangle.cc.o.d"
  "/root/repo/src/geometry/region.cc" "src/CMakeFiles/wnrs_geometry.dir/geometry/region.cc.o" "gcc" "src/CMakeFiles/wnrs_geometry.dir/geometry/region.cc.o.d"
  "/root/repo/src/geometry/svg.cc" "src/CMakeFiles/wnrs_geometry.dir/geometry/svg.cc.o" "gcc" "src/CMakeFiles/wnrs_geometry.dir/geometry/svg.cc.o.d"
  "/root/repo/src/geometry/transform.cc" "src/CMakeFiles/wnrs_geometry.dir/geometry/transform.cc.o" "gcc" "src/CMakeFiles/wnrs_geometry.dir/geometry/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wnrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
