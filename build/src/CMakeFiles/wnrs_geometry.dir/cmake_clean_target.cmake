file(REMOVE_RECURSE
  "libwnrs_geometry.a"
)
