file(REMOVE_RECURSE
  "CMakeFiles/wnrs_geometry.dir/geometry/dominance.cc.o"
  "CMakeFiles/wnrs_geometry.dir/geometry/dominance.cc.o.d"
  "CMakeFiles/wnrs_geometry.dir/geometry/point.cc.o"
  "CMakeFiles/wnrs_geometry.dir/geometry/point.cc.o.d"
  "CMakeFiles/wnrs_geometry.dir/geometry/rectangle.cc.o"
  "CMakeFiles/wnrs_geometry.dir/geometry/rectangle.cc.o.d"
  "CMakeFiles/wnrs_geometry.dir/geometry/region.cc.o"
  "CMakeFiles/wnrs_geometry.dir/geometry/region.cc.o.d"
  "CMakeFiles/wnrs_geometry.dir/geometry/svg.cc.o"
  "CMakeFiles/wnrs_geometry.dir/geometry/svg.cc.o.d"
  "CMakeFiles/wnrs_geometry.dir/geometry/transform.cc.o"
  "CMakeFiles/wnrs_geometry.dir/geometry/transform.cc.o.d"
  "libwnrs_geometry.a"
  "libwnrs_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wnrs_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
