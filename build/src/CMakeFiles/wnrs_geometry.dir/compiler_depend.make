# Empty compiler generated dependencies file for wnrs_geometry.
# This may be replaced when dependencies are built.
