file(REMOVE_RECURSE
  "libwnrs_common.a"
)
