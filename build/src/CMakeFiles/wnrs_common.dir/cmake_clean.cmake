file(REMOVE_RECURSE
  "CMakeFiles/wnrs_common.dir/common/logging.cc.o"
  "CMakeFiles/wnrs_common.dir/common/logging.cc.o.d"
  "CMakeFiles/wnrs_common.dir/common/random.cc.o"
  "CMakeFiles/wnrs_common.dir/common/random.cc.o.d"
  "CMakeFiles/wnrs_common.dir/common/status.cc.o"
  "CMakeFiles/wnrs_common.dir/common/status.cc.o.d"
  "CMakeFiles/wnrs_common.dir/common/string_util.cc.o"
  "CMakeFiles/wnrs_common.dir/common/string_util.cc.o.d"
  "libwnrs_common.a"
  "libwnrs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wnrs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
