# Empty compiler generated dependencies file for wnrs_common.
# This may be replaced when dependencies are built.
