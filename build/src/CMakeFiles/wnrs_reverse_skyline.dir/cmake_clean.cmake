file(REMOVE_RECURSE
  "CMakeFiles/wnrs_reverse_skyline.dir/reverse_skyline/bbrs.cc.o"
  "CMakeFiles/wnrs_reverse_skyline.dir/reverse_skyline/bbrs.cc.o.d"
  "CMakeFiles/wnrs_reverse_skyline.dir/reverse_skyline/naive.cc.o"
  "CMakeFiles/wnrs_reverse_skyline.dir/reverse_skyline/naive.cc.o.d"
  "CMakeFiles/wnrs_reverse_skyline.dir/reverse_skyline/window_query.cc.o"
  "CMakeFiles/wnrs_reverse_skyline.dir/reverse_skyline/window_query.cc.o.d"
  "libwnrs_reverse_skyline.a"
  "libwnrs_reverse_skyline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wnrs_reverse_skyline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
