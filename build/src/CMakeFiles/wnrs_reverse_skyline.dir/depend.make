# Empty dependencies file for wnrs_reverse_skyline.
# This may be replaced when dependencies are built.
