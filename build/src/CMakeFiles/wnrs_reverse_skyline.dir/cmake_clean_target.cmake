file(REMOVE_RECURSE
  "libwnrs_reverse_skyline.a"
)
