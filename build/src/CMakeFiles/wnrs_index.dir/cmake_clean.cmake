file(REMOVE_RECURSE
  "CMakeFiles/wnrs_index.dir/index/bulk_load.cc.o"
  "CMakeFiles/wnrs_index.dir/index/bulk_load.cc.o.d"
  "CMakeFiles/wnrs_index.dir/index/rtree.cc.o"
  "CMakeFiles/wnrs_index.dir/index/rtree.cc.o.d"
  "CMakeFiles/wnrs_index.dir/index/serialize.cc.o"
  "CMakeFiles/wnrs_index.dir/index/serialize.cc.o.d"
  "libwnrs_index.a"
  "libwnrs_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wnrs_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
