
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/bulk_load.cc" "src/CMakeFiles/wnrs_index.dir/index/bulk_load.cc.o" "gcc" "src/CMakeFiles/wnrs_index.dir/index/bulk_load.cc.o.d"
  "/root/repo/src/index/rtree.cc" "src/CMakeFiles/wnrs_index.dir/index/rtree.cc.o" "gcc" "src/CMakeFiles/wnrs_index.dir/index/rtree.cc.o.d"
  "/root/repo/src/index/serialize.cc" "src/CMakeFiles/wnrs_index.dir/index/serialize.cc.o" "gcc" "src/CMakeFiles/wnrs_index.dir/index/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wnrs_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wnrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
