# Empty compiler generated dependencies file for wnrs_index.
# This may be replaced when dependencies are built.
