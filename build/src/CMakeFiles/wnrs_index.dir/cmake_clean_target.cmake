file(REMOVE_RECURSE
  "libwnrs_index.a"
)
