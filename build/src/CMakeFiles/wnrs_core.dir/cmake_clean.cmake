file(REMOVE_RECURSE
  "CMakeFiles/wnrs_core.dir/core/cost.cc.o"
  "CMakeFiles/wnrs_core.dir/core/cost.cc.o.d"
  "CMakeFiles/wnrs_core.dir/core/engine.cc.o"
  "CMakeFiles/wnrs_core.dir/core/engine.cc.o.d"
  "CMakeFiles/wnrs_core.dir/core/explain.cc.o"
  "CMakeFiles/wnrs_core.dir/core/explain.cc.o.d"
  "CMakeFiles/wnrs_core.dir/core/mqp.cc.o"
  "CMakeFiles/wnrs_core.dir/core/mqp.cc.o.d"
  "CMakeFiles/wnrs_core.dir/core/mwp.cc.o"
  "CMakeFiles/wnrs_core.dir/core/mwp.cc.o.d"
  "CMakeFiles/wnrs_core.dir/core/mwq.cc.o"
  "CMakeFiles/wnrs_core.dir/core/mwq.cc.o.d"
  "CMakeFiles/wnrs_core.dir/core/prospect.cc.o"
  "CMakeFiles/wnrs_core.dir/core/prospect.cc.o.d"
  "CMakeFiles/wnrs_core.dir/core/report.cc.o"
  "CMakeFiles/wnrs_core.dir/core/report.cc.o.d"
  "CMakeFiles/wnrs_core.dir/core/reposition.cc.o"
  "CMakeFiles/wnrs_core.dir/core/reposition.cc.o.d"
  "CMakeFiles/wnrs_core.dir/core/safe_region.cc.o"
  "CMakeFiles/wnrs_core.dir/core/safe_region.cc.o.d"
  "libwnrs_core.a"
  "libwnrs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wnrs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
