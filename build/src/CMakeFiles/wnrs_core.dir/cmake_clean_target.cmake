file(REMOVE_RECURSE
  "libwnrs_core.a"
)
