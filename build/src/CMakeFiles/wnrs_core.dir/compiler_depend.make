# Empty compiler generated dependencies file for wnrs_core.
# This may be replaced when dependencies are built.
