
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost.cc" "src/CMakeFiles/wnrs_core.dir/core/cost.cc.o" "gcc" "src/CMakeFiles/wnrs_core.dir/core/cost.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/wnrs_core.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/wnrs_core.dir/core/engine.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/CMakeFiles/wnrs_core.dir/core/explain.cc.o" "gcc" "src/CMakeFiles/wnrs_core.dir/core/explain.cc.o.d"
  "/root/repo/src/core/mqp.cc" "src/CMakeFiles/wnrs_core.dir/core/mqp.cc.o" "gcc" "src/CMakeFiles/wnrs_core.dir/core/mqp.cc.o.d"
  "/root/repo/src/core/mwp.cc" "src/CMakeFiles/wnrs_core.dir/core/mwp.cc.o" "gcc" "src/CMakeFiles/wnrs_core.dir/core/mwp.cc.o.d"
  "/root/repo/src/core/mwq.cc" "src/CMakeFiles/wnrs_core.dir/core/mwq.cc.o" "gcc" "src/CMakeFiles/wnrs_core.dir/core/mwq.cc.o.d"
  "/root/repo/src/core/prospect.cc" "src/CMakeFiles/wnrs_core.dir/core/prospect.cc.o" "gcc" "src/CMakeFiles/wnrs_core.dir/core/prospect.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/wnrs_core.dir/core/report.cc.o" "gcc" "src/CMakeFiles/wnrs_core.dir/core/report.cc.o.d"
  "/root/repo/src/core/reposition.cc" "src/CMakeFiles/wnrs_core.dir/core/reposition.cc.o" "gcc" "src/CMakeFiles/wnrs_core.dir/core/reposition.cc.o.d"
  "/root/repo/src/core/safe_region.cc" "src/CMakeFiles/wnrs_core.dir/core/safe_region.cc.o" "gcc" "src/CMakeFiles/wnrs_core.dir/core/safe_region.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wnrs_reverse_skyline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wnrs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wnrs_skyline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wnrs_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wnrs_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wnrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
