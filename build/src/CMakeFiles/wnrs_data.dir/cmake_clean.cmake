file(REMOVE_RECURSE
  "CMakeFiles/wnrs_data.dir/data/csv.cc.o"
  "CMakeFiles/wnrs_data.dir/data/csv.cc.o.d"
  "CMakeFiles/wnrs_data.dir/data/dataset.cc.o"
  "CMakeFiles/wnrs_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/wnrs_data.dir/data/generators.cc.o"
  "CMakeFiles/wnrs_data.dir/data/generators.cc.o.d"
  "CMakeFiles/wnrs_data.dir/data/workload.cc.o"
  "CMakeFiles/wnrs_data.dir/data/workload.cc.o.d"
  "libwnrs_data.a"
  "libwnrs_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wnrs_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
