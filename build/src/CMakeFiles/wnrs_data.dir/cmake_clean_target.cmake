file(REMOVE_RECURSE
  "libwnrs_data.a"
)
