# Empty dependencies file for wnrs_data.
# This may be replaced when dependencies are built.
