file(REMOVE_RECURSE
  "CMakeFiles/wnrs_cli.dir/wnrs_cli.cc.o"
  "CMakeFiles/wnrs_cli.dir/wnrs_cli.cc.o.d"
  "wnrs_cli"
  "wnrs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wnrs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
