# Empty dependencies file for wnrs_cli.
# This may be replaced when dependencies are built.
