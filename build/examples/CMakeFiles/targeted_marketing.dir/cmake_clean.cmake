file(REMOVE_RECURSE
  "CMakeFiles/targeted_marketing.dir/targeted_marketing.cc.o"
  "CMakeFiles/targeted_marketing.dir/targeted_marketing.cc.o.d"
  "targeted_marketing"
  "targeted_marketing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/targeted_marketing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
