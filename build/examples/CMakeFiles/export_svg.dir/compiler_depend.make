# Empty compiler generated dependencies file for export_svg.
# This may be replaced when dependencies are built.
