file(REMOVE_RECURSE
  "CMakeFiles/export_svg.dir/export_svg.cc.o"
  "CMakeFiles/export_svg.dir/export_svg.cc.o.d"
  "export_svg"
  "export_svg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_svg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
