# Empty dependencies file for safe_region_explorer.
# This may be replaced when dependencies are built.
