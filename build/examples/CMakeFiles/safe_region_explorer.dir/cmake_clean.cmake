file(REMOVE_RECURSE
  "CMakeFiles/safe_region_explorer.dir/safe_region_explorer.cc.o"
  "CMakeFiles/safe_region_explorer.dir/safe_region_explorer.cc.o.d"
  "safe_region_explorer"
  "safe_region_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_region_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
