# Empty compiler generated dependencies file for bench_ablation_reverse_skyline.
# This may be replaced when dependencies are built.
