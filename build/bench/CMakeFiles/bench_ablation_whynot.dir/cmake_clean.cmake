file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_whynot.dir/bench_ablation_whynot.cc.o"
  "CMakeFiles/bench_ablation_whynot.dir/bench_ablation_whynot.cc.o.d"
  "bench_ablation_whynot"
  "bench_ablation_whynot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_whynot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
