# Empty dependencies file for bench_ablation_whynot.
# This may be replaced when dependencies are built.
