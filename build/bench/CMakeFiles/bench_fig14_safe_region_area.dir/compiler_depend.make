# Empty compiler generated dependencies file for bench_fig14_safe_region_area.
# This may be replaced when dependencies are built.
