# Empty dependencies file for bench_table5_cardb_approx_quality.
# This may be replaced when dependencies are built.
