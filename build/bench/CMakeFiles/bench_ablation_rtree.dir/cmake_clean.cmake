file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rtree.dir/bench_ablation_rtree.cc.o"
  "CMakeFiles/bench_ablation_rtree.dir/bench_ablation_rtree.cc.o.d"
  "bench_ablation_rtree"
  "bench_ablation_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
