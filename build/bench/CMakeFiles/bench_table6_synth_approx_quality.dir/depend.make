# Empty dependencies file for bench_table6_synth_approx_quality.
# This may be replaced when dependencies are built.
