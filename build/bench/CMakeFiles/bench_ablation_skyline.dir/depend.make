# Empty dependencies file for bench_ablation_skyline.
# This may be replaced when dependencies are built.
