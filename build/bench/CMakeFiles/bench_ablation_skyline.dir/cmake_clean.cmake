file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_skyline.dir/bench_ablation_skyline.cc.o"
  "CMakeFiles/bench_ablation_skyline.dir/bench_ablation_skyline.cc.o.d"
  "bench_ablation_skyline"
  "bench_ablation_skyline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_skyline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
