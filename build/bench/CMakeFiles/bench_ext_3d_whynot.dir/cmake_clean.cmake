file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_3d_whynot.dir/bench_ext_3d_whynot.cc.o"
  "CMakeFiles/bench_ext_3d_whynot.dir/bench_ext_3d_whynot.cc.o.d"
  "bench_ext_3d_whynot"
  "bench_ext_3d_whynot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_3d_whynot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
