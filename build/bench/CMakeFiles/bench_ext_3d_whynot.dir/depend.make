# Empty dependencies file for bench_ext_3d_whynot.
# This may be replaced when dependencies are built.
