# Empty compiler generated dependencies file for bench_ext_bichromatic.
# This may be replaced when dependencies are built.
