file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_bichromatic.dir/bench_ext_bichromatic.cc.o"
  "CMakeFiles/bench_ext_bichromatic.dir/bench_ext_bichromatic.cc.o.d"
  "bench_ext_bichromatic"
  "bench_ext_bichromatic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_bichromatic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
