# Empty dependencies file for bench_fig16_approx_coverage.
# This may be replaced when dependencies are built.
